"""Data-parallel training: sharding, byte-identity, preemption, crash recovery."""

import hashlib
import json
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro import nn
from repro.data import DataLoader
from repro.models import MLPClassifier, SimpleCNN
from repro.optim import SGD
from repro.parallel.seeding import derive_seed
from repro.parallel.worker import DEPTH_ENV
from repro.training import DataParallelTrainer, DistributedTrainingError, Trainer, \
    shard_bounds
from repro.training.dp_worker import loss_spec_of


def _toy_classification(n=96, features=8, seed=0):
    rng = np.random.default_rng(seed)
    inputs = rng.standard_normal((n, features)).astype(np.float32)
    targets = (inputs[:, 0] + inputs[:, 1] > 0).astype(np.int64)
    return inputs, targets


def _loader(seed=0, n=96, batch_size=32):
    inputs, targets = _toy_classification(n=n)
    return DataLoader(inputs, targets, batch_size=batch_size, shuffle=True, seed=seed)


def _mlp(seed=0):
    return MLPClassifier(8, 2, hidden_sizes=(16,), seed=seed)


def _params(model):
    return [parameter.data.copy() for parameter in model.parameters()]


def _assert_params_equal(left, right):
    for a, b in zip(left, right, strict=True):
        np.testing.assert_array_equal(a, b)


def _sha(path):
    return hashlib.sha256(path.read_bytes()).hexdigest()


class TestShardBounds:
    def test_balanced_contiguous_cover(self):
        for total in (0, 1, 7, 32, 33, 100):
            for world_size in (1, 2, 3, 5, 8):
                bounds = shard_bounds(total, world_size)
                assert len(bounds) == world_size
                assert bounds[0][0] == 0 and bounds[-1][1] == total
                sizes = [end - start for start, end in bounds]
                # Contiguous: each shard starts where the previous one ended.
                for (_, end), (start, _) in zip(bounds, bounds[1:]):
                    assert start == end
                # Balanced: sizes differ by at most one, larger shards first.
                assert max(sizes) - min(sizes) <= 1
                assert sizes == sorted(sizes, reverse=True)
                assert sum(sizes) == total

    def test_non_divisible_distributes_remainder(self):
        assert shard_bounds(10, 4) == [(0, 3), (3, 6), (6, 8), (8, 10)]

    def test_small_batch_leaves_empty_tail_shards(self):
        bounds = shard_bounds(2, 4)
        assert bounds == [(0, 1), (1, 2), (2, 2), (2, 2)]

    def test_bounds_depend_only_on_total_and_world_size(self):
        assert shard_bounds(33, 4) == shard_bounds(33, 4)

    def test_invalid_arguments_raise(self):
        with pytest.raises(ValueError):
            shard_bounds(10, 0)
        with pytest.raises(ValueError):
            shard_bounds(-1, 2)


class TestDeriveSeedProperties:
    def test_train_dp_rank_seeds_pairwise_distinct(self):
        seeds = [derive_seed(0, "train-dp", rank) for rank in range(64)]
        assert len(set(seeds)) == len(seeds)

    def test_stable_across_calls(self):
        for rank in range(8):
            assert derive_seed(7, "train-dp", rank) == \
                derive_seed(7, "train-dp", rank)

    def test_distinct_across_root_seeds_and_namespaces(self):
        assert derive_seed(0, "train-dp", 0) != derive_seed(1, "train-dp", 0)
        assert derive_seed(0, "train-dp", 0) != derive_seed(0, "serve-pool", 0)


class TestDataParallelIdentity:
    def _fit(self, world_size, workers, epochs=2):
        model = _mlp(seed=0)
        trainer = DataParallelTrainer(
            model, SGD(model.parameters(), lr=0.1), nn.CrossEntropyLoss(),
            world_size=world_size, workers=workers, seed=0)
        try:
            history = trainer.fit(_loader(), epochs=epochs)
        finally:
            trainer.close()
        return _params(model), history, trainer

    def test_world_size_one_matches_plain_trainer_bitwise(self):
        model = _mlp(seed=0)
        plain = Trainer(model, SGD(model.parameters(), lr=0.1),
                        nn.CrossEntropyLoss())
        plain_history = plain.fit(_loader(), epochs=2)
        dp_params, dp_history, _ = self._fit(world_size=1, workers=1)
        _assert_params_equal(_params(model), dp_params)
        assert plain_history.to_list() == dp_history.to_list()

    def test_worker_count_never_changes_the_bytes(self):
        inline_params, inline_history, _ = self._fit(world_size=2, workers=1)
        remote_params, remote_history, trainer = self._fit(world_size=2, workers=2)
        _assert_params_equal(inline_params, remote_params)
        assert inline_history.to_list() == remote_history.to_list()
        assert trainer.workers == 2 and not trainer.degraded

    def test_sharding_is_an_explicit_hyperparameter(self):
        # world_size > 1 regroups the batch reduction; it is *documented* as
        # a different arithmetic, not silently identical to world_size=1.
        sharded_params, _, _ = self._fit(world_size=2, workers=1)
        plain_params, _, _ = self._fit(world_size=1, workers=1)
        assert any(not np.array_equal(a, b)
                   for a, b in zip(sharded_params, plain_params))

    def test_batchnorm_buffers_identical_inline_vs_remote(self):
        def run(workers):
            rng = np.random.default_rng(0)
            inputs = rng.standard_normal((32, 3, 8, 8)).astype(np.float32)
            targets = rng.integers(0, 4, size=32).astype(np.int64)
            model = SimpleCNN(num_classes=4, base_width=4, image_size=8, seed=0)
            trainer = DataParallelTrainer(
                model, SGD(model.parameters(), lr=0.05), nn.CrossEntropyLoss(),
                world_size=2, workers=workers, seed=0)
            try:
                trainer.fit(DataLoader(inputs, targets, batch_size=16, seed=0),
                            epochs=1)
            finally:
                trainer.close()
            return model.state_dict()

        inline, remote = run(1), run(2)
        assert inline.keys() == remote.keys()
        for key in inline:
            np.testing.assert_array_equal(inline[key], remote[key])

    def test_degrades_to_inline_inside_sweep_workers(self, monkeypatch):
        monkeypatch.setenv(DEPTH_ENV, "1")
        model = _mlp(seed=0)
        trainer = DataParallelTrainer(model, SGD(model.parameters(), lr=0.1),
                                      nn.CrossEntropyLoss(), world_size=2,
                                      workers=4, seed=0)
        assert trainer.workers == 1 and trainer.degraded
        trainer.fit(_loader(), epochs=2)
        trainer.close()
        monkeypatch.delenv(DEPTH_ENV)
        inline_params, _, _ = self._fit(world_size=2, workers=1)
        _assert_params_equal(_params(model), inline_params)

    def test_worker_processes_require_a_registry_spec(self):
        class Plain(nn.Module):
            def __init__(self):
                super().__init__()
                self.linear = nn.Linear(8, 2)

            def forward(self, x):
                return self.linear(x)

        model = Plain()
        with pytest.raises(DistributedTrainingError, match="model_spec"):
            DataParallelTrainer(model, SGD(model.parameters(), lr=0.1),
                                nn.CrossEntropyLoss(), world_size=2, workers=2)
        # Inline execution needs no spec: the parent's own model runs the shards.
        trainer = DataParallelTrainer(model, SGD(model.parameters(), lr=0.1),
                                      nn.CrossEntropyLoss(), world_size=2,
                                      workers=1)
        trainer.fit(_loader(), epochs=1)
        trainer.close()

    def test_unsupported_loss_rejected(self):
        class OddLoss:
            pass

        with pytest.raises(ValueError, match="sum decomposition"):
            loss_spec_of(OddLoss())
        model = _mlp(seed=0)
        with pytest.raises(DistributedTrainingError, match="sum decomposition"):
            DataParallelTrainer(model, SGD(model.parameters(), lr=0.1),
                                OddLoss(), world_size=2, workers=1)

    def test_describe_reports_fleet_identity(self):
        model = _mlp(seed=0)
        trainer = DataParallelTrainer(model, SGD(model.parameters(), lr=0.1),
                                      nn.CrossEntropyLoss(), world_size=2,
                                      workers=2, seed=5)
        try:
            trainer.fit(_loader(), epochs=1)
            facts = trainer.describe()
        finally:
            trainer.close()
        assert facts["world_size"] == 2 and facts["workers"] == 2
        assert facts["degraded"] is False and facts["restarts"] == 0
        assert len(facts["per_worker"]) == 2
        for rank, worker in enumerate(facts["per_worker"]):
            assert worker["rank"] == rank
            assert worker["seed"] == derive_seed(5, "train-dp", rank)
            assert worker["depth"] == 1


class TestCrashRecovery:
    def _run(self, workers, kill_between_epochs=False):
        model = _mlp(seed=0)
        trainer = DataParallelTrainer(model, SGD(model.parameters(), lr=0.1),
                                      nn.CrossEntropyLoss(), world_size=2,
                                      workers=workers, seed=0)
        loader = _loader()
        try:
            trainer.fit(loader, epochs=1)
            if kill_between_epochs:
                victim = trainer.describe()["per_worker"][0]["pid"]
                os.kill(victim, signal.SIGKILL)
                deadline = time.time() + 10.0
                while trainer.describe()["per_worker"][0]["alive"]:
                    if time.time() > deadline:  # pragma: no cover
                        pytest.fail("killed worker still reported alive")
                    time.sleep(0.02)
            trainer.fit(loader, epochs=1)
        finally:
            trainer.close()
        return _params(model), trainer.restarts

    def test_killed_worker_respawns_and_bytes_are_unchanged(self):
        reference, _ = self._run(workers=1)
        recovered, restarts = self._run(workers=2, kill_between_epochs=True)
        assert restarts >= 1
        _assert_params_equal(reference, recovered)


class TestStepCheckpointing:
    def _trainer(self, seed=0):
        model = _mlp(seed=seed)
        return model, Trainer(model, SGD(model.parameters(), lr=0.1),
                              nn.CrossEntropyLoss())

    def test_step_interval_requires_checkpoint_dir(self):
        _, trainer = self._trainer()
        with pytest.raises(ValueError, match="checkpoint_dir"):
            trainer.fit(_loader(), epochs=1, checkpoint_every_steps=2)

    def test_step_files_and_rolling_last_step(self, tmp_path):
        _, trainer = self._trainer()
        trainer.fit(_loader(), epochs=1, checkpoint_dir=tmp_path,
                    checkpoint_every_steps=2)
        # 96 examples / batch 32 = 3 steps -> one step file at step 2.
        assert (tmp_path / "step_000002.npz").exists()
        assert _sha(tmp_path / "last_step.npz") == _sha(tmp_path / "step_000002.npz")

    def test_mid_epoch_resume_is_bit_identical(self, tmp_path):
        loader = _loader()
        model, trainer = self._trainer(seed=0)
        trainer.fit(loader, epochs=2, checkpoint_dir=tmp_path,
                    checkpoint_every_steps=1)
        trainer.save_checkpoint(tmp_path / "final.npz", loader=loader)
        reference_history = trainer.history.to_list()

        # Steps 1..3 are epoch 1, step 4 is mid-epoch 2: resume from there on
        # a *differently initialized* model and replay the rest of the run.
        resumed_model, resumed = self._trainer(seed=99)
        resumed_loader = _loader()
        resume_dir = tmp_path / "resume"
        resumed.fit(resumed_loader, epochs=2, checkpoint_dir=resume_dir,
                    checkpoint_every_steps=1,
                    resume_from=tmp_path / "step_000004.npz")
        resumed.save_checkpoint(resume_dir / "final.npz", loader=resumed_loader)

        _assert_params_equal(_params(model), _params(resumed_model))
        assert resumed.history.to_list() == reference_history
        assert _sha(resume_dir / "final.npz") == _sha(tmp_path / "final.npz")
        # The replayed tail's step checkpoints byte-match the original run's.
        assert _sha(resume_dir / "step_000006.npz") == \
            _sha(tmp_path / "step_000006.npz")

    def test_interrupted_step_save_never_corrupts_published_checkpoint(
            self, tmp_path, monkeypatch):
        from repro.io import checkpoint as checkpoint_module

        _, trainer = self._trainer()
        trainer.fit(_loader(), epochs=1, checkpoint_dir=tmp_path,
                    checkpoint_every_steps=2)
        published = tmp_path / "step_000002.npz"
        before = published.read_bytes()

        real_write = checkpoint_module._write_npz

        def torn_write(stream, payload):
            stream.write(b"PK\x03\x04partial")  # plausible zip prefix, then die
            raise OSError("simulated crash mid-write")

        monkeypatch.setattr(checkpoint_module, "_write_npz", torn_write)
        with pytest.raises(OSError, match="simulated crash"):
            trainer.save_checkpoint(published)
        monkeypatch.setattr(checkpoint_module, "_write_npz", real_write)

        assert published.read_bytes() == before
        checkpoint_module.load_checkpoint(published)  # still a valid archive
        assert not list(tmp_path.glob("*.tmp"))  # the torn temp was removed


class TestPreemptionSubprocess:
    """SIGKILL a real training process at a step boundary, resume, compare bytes."""

    BASE = [sys.executable, "-m", "repro", "train", "--scale", "smoke",
            "--epochs", "2", "--world-size", "2", "--train-jobs", "1",
            "--checkpoint-every-steps", "2", "--quiet"]

    def _env(self):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return env

    def _run(self, extra):
        completed = subprocess.run(self.BASE + extra, env=self._env(),
                                   capture_output=True, text=True, timeout=600)
        assert completed.returncode == 0, completed.stderr
        return json.loads(completed.stdout)

    def test_sigkill_then_resume_reproduces_the_uninterrupted_run(self, tmp_path):
        reference = self._run(["--checkpoint-dir", str(tmp_path / "ref")])

        kill_dir = tmp_path / "killed"
        process = subprocess.Popen(
            self.BASE + ["--checkpoint-dir", str(kill_dir)], env=self._env(),
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        try:
            target = kill_dir / "step_000002.npz"
            deadline = time.time() + 300.0
            while not target.exists():
                if process.poll() is not None:  # pragma: no cover
                    pytest.fail("training finished before it could be killed")
                if time.time() > deadline:  # pragma: no cover
                    pytest.fail("no step checkpoint appeared before the deadline")
                time.sleep(0.02)
            process.send_signal(signal.SIGKILL)
        finally:
            process.wait()

        resumed = self._run(["--checkpoint-dir", str(kill_dir),
                             "--resume-from", str(kill_dir / "last_step.npz")])
        assert resumed["checkpoint_sha256"] == reference["checkpoint_sha256"]
        assert resumed["final"] == reference["final"]
