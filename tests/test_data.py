"""Tests for the data substrate: synthetic images, augmentation, loaders, translation."""

import numpy as np
import pytest

from repro.data import (
    BOS_ID,
    EOS_ID,
    PAD_ID,
    UNK_ID,
    Compose,
    DataLoader,
    SyntheticImageClassification,
    SyntheticTranslationTask,
    Vocabulary,
    make_cifar10_like,
    make_cifar100_like,
    make_imagenet_like,
    random_crop,
    random_horizontal_flip,
    standard_cifar_augmentation,
)


class TestSyntheticImages:
    def test_shapes_and_dtypes(self):
        data = SyntheticImageClassification(num_classes=6, image_size=10, train_size=40,
                                            test_size=12, seed=0)
        assert data.train_images.shape == (40, 3, 10, 10)
        assert data.test_images.shape == (12, 3, 10, 10)
        assert data.train_images.dtype == np.float32
        assert data.train_labels.dtype == np.int64

    def test_labels_in_range(self):
        data = SyntheticImageClassification(num_classes=6, train_size=50, test_size=10, seed=1)
        assert data.train_labels.min() >= 0
        assert data.train_labels.max() < 6

    def test_deterministic_given_seed(self):
        a = SyntheticImageClassification(train_size=20, test_size=5, seed=7)
        b = SyntheticImageClassification(train_size=20, test_size=5, seed=7)
        np.testing.assert_allclose(a.train_images, b.train_images)
        np.testing.assert_array_equal(a.train_labels, b.train_labels)

    def test_different_seeds_differ(self):
        a = SyntheticImageClassification(train_size=20, test_size=5, seed=1)
        b = SyntheticImageClassification(train_size=20, test_size=5, seed=2)
        assert not np.allclose(a.train_images, b.train_images)

    def test_normalization(self):
        data = SyntheticImageClassification(train_size=200, test_size=20, seed=3)
        assert abs(float(data.train_images.mean())) < 0.05
        assert float(data.train_images.std()) == pytest.approx(1.0, abs=0.05)

    def test_classes_are_distinguishable(self):
        """Mean images of different classes should differ more than within-class noise."""
        data = SyntheticImageClassification(num_classes=4, train_size=200, test_size=20,
                                            second_order_fraction=0.0, seed=4)
        means = [data.train_images[data.train_labels == c].mean(axis=0) for c in range(4)]
        gaps = [np.abs(means[i] - means[j]).mean()
                for i in range(4) for j in range(i + 1, 4)]
        assert min(gaps) > 0.05

    def test_describe_and_len(self):
        data = SyntheticImageClassification(train_size=30, test_size=5, seed=0)
        assert len(data) == 30
        description = data.describe()
        assert description["train_size"] == 30

    def test_convenience_builders(self):
        assert make_cifar10_like(train_size=16, test_size=4).num_classes == 10
        assert make_cifar100_like(train_size=16, test_size=4, num_classes=20).num_classes == 20
        assert make_imagenet_like(train_size=16, test_size=4, image_size=20).image_size == 20


class TestAugmentation:
    def setup_method(self):
        self.rng = np.random.default_rng(0)
        self.images = np.random.default_rng(1).standard_normal((8, 3, 10, 10)).astype(np.float32)

    def test_random_crop_preserves_shape(self):
        assert random_crop(self.images, 2, self.rng).shape == self.images.shape

    def test_random_crop_zero_padding_is_identity(self):
        np.testing.assert_allclose(random_crop(self.images, 0, self.rng), self.images)

    def test_flip_reverses_width(self):
        flipped = random_horizontal_flip(self.images, self.rng, probability=1.0)
        np.testing.assert_allclose(flipped, self.images[:, :, :, ::-1])

    def test_flip_probability_zero_is_identity(self):
        unflipped = random_horizontal_flip(self.images, self.rng, probability=0.0)
        np.testing.assert_allclose(unflipped, self.images)

    def test_compose_and_standard_pipeline(self):
        pipeline = standard_cifar_augmentation(padding=2)
        assert isinstance(pipeline, Compose)
        out = pipeline(self.images, self.rng)
        assert out.shape == self.images.shape


class TestDataLoader:
    def setup_method(self):
        self.inputs = np.arange(20, dtype=np.float32).reshape(10, 2)
        self.targets = np.arange(10)

    def test_batches_cover_all_examples(self):
        loader = DataLoader(self.inputs, self.targets, batch_size=3, shuffle=False)
        seen = np.concatenate([targets for _, targets in loader])
        np.testing.assert_array_equal(np.sort(seen), self.targets)
        assert len(loader) == 4

    def test_drop_last(self):
        loader = DataLoader(self.inputs, self.targets, batch_size=3, shuffle=False,
                            drop_last=True)
        assert len(loader) == 3
        assert all(len(targets) == 3 for _, targets in loader)

    def test_shuffle_changes_order_but_not_content(self):
        loader = DataLoader(self.inputs, self.targets, batch_size=10, shuffle=True, seed=3)
        (_, first_epoch), = list(loader)
        (_, second_epoch), = list(loader)
        assert set(first_epoch) == set(self.targets)
        assert not np.array_equal(first_epoch, second_epoch)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            DataLoader(self.inputs, self.targets[:5])

    def test_augmentation_applied(self):
        loader = DataLoader(self.inputs, self.targets, batch_size=5, shuffle=False,
                            augmentation=lambda batch, rng: batch * 0.0)
        batch_inputs, _ = next(iter(loader))
        np.testing.assert_allclose(batch_inputs, 0.0)


class TestVocabulary:
    def test_specials_fixed_ids(self):
        vocab = Vocabulary(["apple", "pear"])
        assert vocab.token_to_id["<pad>"] == PAD_ID
        assert vocab.token_to_id["<bos>"] == BOS_ID
        assert vocab.token_to_id["<eos>"] == EOS_ID
        assert vocab.token_to_id["<unk>"] == UNK_ID

    def test_encode_decode_roundtrip(self):
        vocab = Vocabulary(["a", "b", "c"])
        ids = vocab.encode(["a", "c"], add_bos=True, add_eos=True)
        assert ids[0] == BOS_ID and ids[-1] == EOS_ID
        assert vocab.decode(ids) == ["a", "c"]

    def test_unknown_token_maps_to_unk(self):
        vocab = Vocabulary(["a"])
        assert vocab.encode(["zzz"], add_eos=False) == [UNK_ID]

    def test_duplicates_ignored(self):
        vocab = Vocabulary(["a", "a", "b"])
        assert len(vocab) == 4 + 2

    def test_pad_batch(self):
        batch = Vocabulary.pad_batch([[5, 6], [7]], max_len=4)
        np.testing.assert_array_equal(batch, [[5, 6, 0, 0], [7, 0, 0, 0]])

    def test_pad_batch_truncates(self):
        batch = Vocabulary.pad_batch([[1, 2, 3, 4, 5]], max_len=3)
        assert batch.shape == (1, 3)


class TestTranslationTask:
    def setup_method(self):
        self.task = SyntheticTranslationTask(train_size=60, test_size=12, seed=0)

    def test_split_sizes(self):
        assert len(self.task.train_pairs) == 60
        assert len(self.task.test_pairs) == 12

    def test_deterministic(self):
        other = SyntheticTranslationTask(train_size=60, test_size=12, seed=0)
        assert [pair.source_text for pair in other.train_pairs] == \
            [pair.source_text for pair in self.task.train_pairs]

    def test_target_is_verb_final(self):
        """In single-clause sentences the target verb must be the last word."""
        verb_targets = {"sieht", "mag", "findet", "nimmt", "haelt", "will", "kauft", "malt"}
        for pair in self.task.train_pairs:
            if "und" in pair.target_tokens:
                continue
            words = [token for token in pair.target_tokens if token not in {".", "!"}]
            assert words[-1] in verb_targets

    def test_nouns_capitalized_in_target(self):
        for pair in self.task.train_pairs[:20]:
            capitalized = [token for token in pair.target_tokens if token[0].isupper()]
            assert capitalized, pair.target_text

    def test_punctuation_attached_in_surface_text(self):
        for pair in self.task.train_pairs[:20]:
            assert pair.target_text.endswith((".", "!"))
            assert " ." not in pair.target_text

    def test_encoded_arrays_shapes_and_shift(self):
        source, decoder_input, decoder_target = self.task.training_arrays()
        assert source.shape == (60, self.task.max_len)
        assert decoder_input.shape == decoder_target.shape
        # Teacher forcing: input starts with <bos>, target ends each sequence with <eos>.
        assert np.all(decoder_input[:, 0] == BOS_ID)
        assert np.all(decoder_target != BOS_ID)

    def test_references_and_hypotheses_roundtrip(self):
        references = self.task.references()
        assert len(references) == 12
        ids = [self.task.target_vocab.encode(pair.target_tokens, add_eos=False)
               for pair in self.task.test_pairs]
        hypotheses = self.task.hypotheses_from_ids(ids)
        assert hypotheses == references

    def test_describe(self):
        description = self.task.describe()
        assert description["source_vocab"] == len(self.task.source_vocab)
