"""Tests for the training harnesses (classification trainer, seq2seq trainer, history)."""

import numpy as np
import pytest

from repro import nn
from repro.data import DataLoader, SyntheticTranslationTask
from repro.models import MLPClassifier, Transformer
from repro.optim import Adam, SGD
from repro.training import History, Seq2SeqTrainer, Trainer


def _toy_classification(n=120, features=8, seed=0):
    rng = np.random.default_rng(seed)
    inputs = rng.standard_normal((n, features)).astype(np.float32)
    targets = (inputs[:, 0] + inputs[:, 1] > 0).astype(np.int64)
    return inputs, targets


class TestHistory:
    def test_append_and_columns(self):
        history = History()
        history.append(train_loss=1.0)
        history.append(train_loss=0.5, eval_accuracy=0.8)
        assert len(history) == 2
        assert history.column("train_loss") == [1.0, 0.5]
        assert history.last("eval_accuracy") == 0.8
        assert history[0]["epoch"] == 1

    def test_best_ignores_non_finite(self):
        history = History()
        history.append(train_loss=float("inf"))
        history.append(train_loss=0.7)
        assert history.best("train_loss", mode="min") == 0.7

    def test_to_list_copies(self):
        history = History()
        history.append(metric=1.0)
        exported = history.to_list()
        exported[0]["metric"] = 99
        assert history[0]["metric"] == 1.0


class TestTrainer:
    def _trainer(self, model, lr=0.1):
        return Trainer(model, SGD(model.parameters(), lr=lr), nn.CrossEntropyLoss())

    def test_loss_decreases(self):
        inputs, targets = _toy_classification()
        model = MLPClassifier(8, 2, hidden_sizes=(16,), seed=0)
        trainer = self._trainer(model)
        loader = DataLoader(inputs, targets, batch_size=32, seed=0)
        history = trainer.fit(loader, epochs=8)
        losses = history.column("train_loss")
        assert losses[-1] < losses[0]
        assert history.last("train_accuracy") > 0.8

    def test_profile_ops_times_training_steps(self):
        inputs, targets = _toy_classification()
        model = MLPClassifier(8, 2, hidden_sizes=(16,), seed=0)
        trainer = self._trainer(model)
        loader = DataLoader(inputs, targets, batch_size=32, seed=0)
        table = trainer.profile_ops(loader, num_batches=2)
        # The MLP forward runs through the fused linear op; its backward must
        # have been timed too, and the hook must be gone afterwards.
        assert table.calls["linear"] >= 2
        assert table.calls["linear:backward"] >= 2
        assert table.grand_total > 0.0
        from repro.tensor import engine
        assert engine._TIMING_HOOKS == ()

    def test_profile_ops_respects_divergence_guard(self):
        inputs, targets = _toy_classification()
        model = MLPClassifier(8, 2, hidden_sizes=(16,), seed=0)
        trainer = self._trainer(model)
        trainer.divergence_threshold = 1e-9   # every batch "diverges"
        before = [p.data.copy() for p in model.parameters()]
        trainer.profile_ops(DataLoader(inputs, targets, batch_size=32, seed=0),
                            num_batches=2)
        # No optimizer step may be applied to a diverged model during profiling.
        for parameter, snapshot in zip(model.parameters(), before):
            np.testing.assert_array_equal(parameter.data, snapshot)

    def test_evaluate_returns_loss_and_accuracy(self):
        inputs, targets = _toy_classification()
        model = MLPClassifier(8, 2, hidden_sizes=(8,), seed=1)
        trainer = self._trainer(model)
        metrics = trainer.evaluate(inputs, targets)
        assert set(metrics) == {"loss", "accuracy"}
        assert 0.0 <= metrics["accuracy"] <= 1.0

    def test_eval_metrics_recorded_when_provided(self):
        inputs, targets = _toy_classification()
        model = MLPClassifier(8, 2, hidden_sizes=(8,), seed=2)
        trainer = self._trainer(model)
        loader = DataLoader(inputs, targets, batch_size=32, seed=0)
        history = trainer.fit(loader, epochs=2, eval_inputs=inputs, eval_targets=targets)
        assert "eval_accuracy" in history[0]

    def test_divergence_detection_stops_training(self):
        inputs, targets = _toy_classification()
        model = MLPClassifier(8, 2, hidden_sizes=(16,), seed=3)
        # Absurd learning rate guarantees the loss explodes.
        trainer = Trainer(model, SGD(model.parameters(), lr=1e6), nn.CrossEntropyLoss(),
                          divergence_threshold=50.0)
        loader = DataLoader(inputs, targets, batch_size=32, seed=0)
        history = trainer.fit(loader, epochs=10)
        assert trainer.diverged
        assert len(history) < 10
        assert trainer.divergence_epoch is not None

    def test_gradient_clipping_path(self):
        inputs, targets = _toy_classification()
        model = MLPClassifier(8, 2, hidden_sizes=(8,), seed=4)
        trainer = Trainer(model, SGD(model.parameters(), lr=0.1), nn.CrossEntropyLoss(),
                          grad_clip=0.5)
        loader = DataLoader(inputs, targets, batch_size=64, seed=0)
        trainer.fit(loader, epochs=1)
        assert not trainer.diverged

    def test_scheduler_steps_per_epoch(self):
        from repro.optim import MultiStepLR
        inputs, targets = _toy_classification()
        model = MLPClassifier(8, 2, hidden_sizes=(8,), seed=5)
        optimizer = SGD(model.parameters(), lr=1.0)
        scheduler = MultiStepLR(optimizer, milestones=[1], gamma=0.1)
        trainer = Trainer(model, optimizer, nn.CrossEntropyLoss(), scheduler=scheduler)
        loader = DataLoader(inputs, targets, batch_size=64, seed=0)
        trainer.fit(loader, epochs=2)
        assert optimizer.param_groups[0]["lr"] == pytest.approx(0.1)


class TestSeq2SeqTrainer:
    def _setup(self, neuron_type="linear", epochs=2):
        task = SyntheticTranslationTask(train_size=48, test_size=8, seed=0)
        model = Transformer(len(task.source_vocab), len(task.target_vocab), model_dim=16,
                            num_heads=2, num_layers=1, hidden_dim=32, max_len=task.max_len,
                            neuron_type=neuron_type, rank=3, seed=0)
        trainer = Seq2SeqTrainer(model, Adam(model.parameters(), lr=3e-3),
                                 nn.LabelSmoothingLoss(0.1, ignore_index=task.pad_id))
        return task, trainer, epochs

    def test_training_reduces_loss(self):
        task, trainer, _ = self._setup()
        history = trainer.fit(task, epochs=3, batch_size=16)
        losses = history.column("train_loss")
        assert losses[-1] < losses[0]

    def test_evaluate_bleu_returns_all_settings(self):
        task, trainer, _ = self._setup()
        trainer.fit(task, epochs=1, batch_size=16)
        scores = trainer.evaluate_bleu(task)
        assert ("13a", True) in scores and ("international", False) in scores
        assert len(scores["hypotheses"]) == 8
        assert all(0.0 <= scores[key] <= 100.0 for key in scores if key != "hypotheses")

    def test_evaluate_loss_finite(self):
        task, trainer, _ = self._setup()
        source, decoder_input, decoder_target = task.test_arrays()
        loss = trainer.evaluate_loss(source, decoder_input, decoder_target)
        assert np.isfinite(loss)

    def test_quadratic_transformer_trains(self):
        task, trainer, _ = self._setup(neuron_type="proposed")
        history = trainer.fit(task, epochs=2, batch_size=16)
        assert not trainer.diverged
        assert np.isfinite(history.last("train_loss"))
