"""Tests for the model zoo: ResNets, SimpleCNN, MLP."""

import numpy as np
import pytest

from repro import nn
from repro.models import CIFAR_RESNET_DEPTHS, CifarResNet, MLPClassifier, ResNet18, SimpleCNN, \
    resnet20
from repro.quadratic import EfficientQuadraticConv2d, KervolutionConv2d
from repro.tensor import Tensor


RNG = np.random.default_rng(0)


def _images(n=2, channels=3, size=12):
    return Tensor(RNG.standard_normal((n, channels, size, size)).astype(np.float32))


class TestCifarResNet:
    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            CifarResNet(21)

    def test_named_depths_are_valid(self):
        assert all((depth - 2) % 6 == 0 for depth in CIFAR_RESNET_DEPTHS)

    def test_output_shape(self):
        model = CifarResNet(8, num_classes=7, base_width=4, seed=0)
        assert model(_images()).shape == (2, 7)

    def test_conv_layer_count(self):
        # depth = 6n+2 -> 6n 3x3 convs in the blocks + 1 stem conv.
        model = CifarResNet(14, base_width=4, seed=0)
        assert model.num_conv_layers == 13

    def test_parameters_grow_with_depth(self):
        shallow = CifarResNet(8, base_width=4, seed=0)
        deep = CifarResNet(20, base_width=4, seed=0)
        assert deep.num_parameters() > shallow.num_parameters()

    def test_width_multiplier_increases_parameters(self):
        base = CifarResNet(8, base_width=4, seed=0)
        wide = CifarResNet(8, base_width=4, width_multiplier=1.5, seed=0)
        assert wide.num_parameters() > base.num_parameters()

    @pytest.mark.parametrize("neuron_type", ["linear", "proposed", "quad2", "quad_residual"])
    def test_neuron_types_forward_and_backward(self, neuron_type):
        model = CifarResNet(8, num_classes=5, neuron_type=neuron_type, rank=3, base_width=4,
                            seed=1)
        logits = model(_images())
        loss = nn.CrossEntropyLoss()(logits, np.array([0, 1]))
        loss.backward()
        assert np.isfinite(float(loss.data))
        assert all(parameter.grad is not None for parameter in model.parameters())

    def test_proposed_network_contains_quadratic_convs(self):
        model = CifarResNet(8, neuron_type="proposed", rank=3, base_width=4, seed=0)
        quadratic_layers = [module for module in model.modules()
                            if isinstance(module, EfficientQuadraticConv2d)]
        assert len(quadratic_layers) == model.num_conv_layers

    def test_proposed_parameter_overhead_is_small(self):
        # base_width 10 with rank 9 keeps every stage width a multiple of k+1,
        # so the comparison isolates the per-output overhead of Eq. (9).
        linear = CifarResNet(14, neuron_type="linear", base_width=10, seed=0)
        proposed = CifarResNet(14, neuron_type="proposed", rank=9, base_width=10, seed=0)
        assert proposed.num_parameters() < 1.05 * linear.num_parameters()

    def test_named_constructor(self):
        model = resnet20(num_classes=4, base_width=4)
        assert model.depth == 20
        assert model(_images()).shape == (2, 4)

    def test_deterministic_with_seed(self):
        a = CifarResNet(8, base_width=4, seed=5)
        b = CifarResNet(8, base_width=4, seed=5)
        np.testing.assert_allclose(a.stem.weight.data, b.stem.weight.data)

    def test_downsampling_halves_resolution_twice(self):
        model = CifarResNet(8, base_width=4, seed=0)
        captured = {}
        model.stage3.register_forward_hook(
            lambda module, inputs, output: captured.setdefault("shape", output.shape))
        model(_images(size=16))
        assert captured["shape"][2] == 4


class TestResNet18:
    def test_output_and_conv_count(self):
        model = ResNet18(num_classes=6, base_width=4, seed=0)
        assert model(_images()).shape == (2, 6)
        assert model.num_conv_layers == 17

    def test_neuron_first_n_limits_kervolution_layers(self):
        model = ResNet18(num_classes=6, neuron_type="kervolution", base_width=4,
                         neuron_first_n=3, neuron_kwargs={"degree": 2}, seed=0)
        kerv_layers = [module for module in model.modules()
                       if isinstance(module, KervolutionConv2d)]
        assert len(kerv_layers) == 3

    def test_neuron_everywhere_when_first_n_none(self):
        model = ResNet18(num_classes=6, neuron_type="proposed", rank=3, base_width=4, seed=0)
        quadratic_layers = [module for module in model.modules()
                            if isinstance(module, EfficientQuadraticConv2d)]
        assert len(quadratic_layers) == 17


class TestSimpleCNNAndMLP:
    def test_simple_cnn_shapes(self):
        model = SimpleCNN(num_classes=5, base_width=4, seed=0)
        assert model(_images(size=16)).shape == (2, 5)

    def test_simple_cnn_proposed(self):
        model = SimpleCNN(num_classes=5, neuron_type="proposed", rank=3, base_width=4, seed=0)
        out = model(_images(size=16))
        out.sum().backward()
        assert out.shape == (2, 5)

    def test_mlp_flattens_images(self):
        model = MLPClassifier(3 * 8 * 8, 4, hidden_sizes=(16,), seed=0)
        assert model(_images(size=8)).shape == (2, 4)

    def test_mlp_neuron_types(self):
        for neuron_type in ("linear", "proposed", "quad1"):
            model = MLPClassifier(10, 3, hidden_sizes=(8,), neuron_type=neuron_type, rank=2,
                                  seed=0)
            out = model(Tensor(RNG.standard_normal((4, 10)).astype(np.float32)))
            assert out.shape == (4, 3)
