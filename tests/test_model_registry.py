"""Model-spec registry: capture, sanitization, and rebuild-by-name."""

import numpy as np
import pytest

from repro import nn
from repro.models import (
    CifarResNet,
    MLPClassifier,
    ModelSpecError,
    SimpleCNN,
    Transformer,
    build_from_spec,
    build_model,
    get_model_builder,
    model_names,
    register_model,
    spec_of,
)
from repro.models.registry import _REGISTRY, sanitize_spec_value
from repro.quadratic.factory import neuron_conv2d, neuron_linear
from repro.tensor import Tensor


class TestRegistration:
    def test_zoo_models_registered(self):
        assert {"simple_cnn", "mlp_classifier", "cifar_resnet", "resnet18",
                "transformer", "neuron_conv2d", "neuron_linear"} <= set(model_names())

    def test_unknown_model_lists_available(self):
        with pytest.raises(KeyError, match="simple_cnn"):
            get_model_builder("made_up_net")

    def test_conflicting_registration_rejected(self):
        @register_model("_probe_model")
        class Probe(nn.Module):
            def forward(self, x):
                return x

        try:
            with pytest.raises(ValueError, match="already registered"):
                @register_model("_probe_model")
                class Other(nn.Module):
                    def forward(self, x):
                        return x
        finally:
            _REGISTRY.pop("_probe_model", None)


class TestSpecCapture:
    def test_direct_construction_attaches_spec(self):
        model = SimpleCNN(num_classes=4, neuron_type="proposed", rank=2,
                          base_width=4, image_size=8, seed=3)
        spec = spec_of(model)
        assert spec["name"] == "simple_cnn"
        assert spec["kwargs"]["num_classes"] == 4
        assert spec["kwargs"]["neuron_type"] == "proposed"
        # Defaults are captured too, so the spec is complete on its own.
        assert spec["kwargs"]["in_channels"] == 3

    def test_positional_arguments_are_captured_by_name(self):
        model = CifarResNet(8, 5, "proposed", seed=1, base_width=4)
        kwargs = spec_of(model)["kwargs"]
        assert kwargs["depth"] == 8
        assert kwargs["num_classes"] == 5
        assert kwargs["neuron_type"] == "proposed"

    def test_factory_builders_attach_spec(self):
        layer = neuron_linear(neuron_type="proposed", in_features=6,
                              out_features=4, rank=2, seed=7)
        spec = spec_of(layer)
        assert spec["name"] == "neuron_linear"
        assert spec["kwargs"]["seed"] == 7

    def test_tuples_are_normalized_to_lists(self):
        model = MLPClassifier(12, 3, hidden_sizes=(8, 4), seed=0)
        assert spec_of(model)["kwargs"]["hidden_sizes"] == [8, 4]

    def test_unregistered_module_has_no_spec(self):
        assert spec_of(nn.Linear(3, 2)) is None

    def test_subclass_does_not_inherit_parent_spec(self):
        # A subclass is a different architecture; stamping it with the
        # parent's spec would make build_from_spec reconstruct the wrong
        # model silently.
        class Widened(SimpleCNN):
            pass

        model = Widened(num_classes=4, base_width=4, image_size=8, seed=0)
        assert spec_of(model) is None

    def test_registered_subclass_captures_its_own_spec(self):
        @register_model("_probe_sub")
        class Sub(SimpleCNN):
            pass

        try:
            model = Sub(num_classes=4, base_width=4, image_size=8, seed=0)
            assert spec_of(model)["name"] == "_probe_sub"
        finally:
            _REGISTRY.pop("_probe_sub", None)

    def test_sanitize_rejects_non_primitives(self):
        with pytest.raises(ModelSpecError, match="Generator"):
            sanitize_spec_value(np.random.default_rng(0), context="rng")

    def test_sanitize_collapses_numpy_scalars(self):
        assert sanitize_spec_value(np.int64(3)) == 3
        assert isinstance(sanitize_spec_value(np.float32(0.5)), float)


class TestBuildRoundTrip:
    @pytest.mark.parametrize("make", [
        lambda: SimpleCNN(num_classes=3, neuron_type="proposed", rank=2,
                          base_width=4, image_size=8, seed=5),
        lambda: MLPClassifier(10, 4, hidden_sizes=(6,), neuron_type="proposed",
                              rank=2, seed=5),
        lambda: CifarResNet(8, num_classes=4, neuron_type="linear",
                            base_width=4, seed=5),
        lambda: neuron_conv2d(neuron_type="proposed", in_channels=2,
                              out_channels=3, kernel_size=3, rank=2, seed=5),
    ])
    def test_state_dicts_match_bit_exactly(self, make):
        original = make()
        rebuilt = build_from_spec(spec_of(original))
        state, rebuilt_state = original.state_dict(), rebuilt.state_dict()
        assert state.keys() == rebuilt_state.keys()
        for key in state:
            assert np.array_equal(state[key], rebuilt_state[key]), key

    def test_json_round_trip_of_spec_still_builds(self):
        import json

        original = MLPClassifier(10, 4, hidden_sizes=(6, 5), seed=2)
        spec = json.loads(json.dumps(spec_of(original)))
        rebuilt = build_from_spec(spec)
        x = Tensor(np.random.default_rng(0).standard_normal((3, 10)).astype(np.float32))
        assert np.array_equal(original.eval()(x).data, rebuilt.eval()(x).data)

    def test_transformer_round_trip(self):
        original = Transformer(src_vocab_size=11, tgt_vocab_size=13, model_dim=8,
                               num_heads=2, num_layers=1, hidden_dim=16, seed=1)
        rebuilt = build_from_spec(spec_of(original))
        state, rebuilt_state = original.state_dict(), rebuilt.state_dict()
        assert state.keys() == rebuilt_state.keys()
        for key in state:
            assert np.array_equal(state[key], rebuilt_state[key]), key

    def test_build_model_rejects_non_primitive_kwargs(self):
        with pytest.raises(ModelSpecError):
            build_model("simple_cnn", num_classes=3,
                        neuron_kwargs={"rng": np.random.default_rng(0)})

    def test_build_from_spec_rejects_garbage(self):
        with pytest.raises(ValueError, match="not a model spec"):
            build_from_spec({"kwargs": {}})
