"""Control plane: hot reload, canary/shadow routing, histograms, admin API."""

import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro import cli
from repro.io import save_bundle
from repro.models import SimpleCNN
from repro.serve import (
    EngineClosed,
    LatencyHistogram,
    ManagedModel,
    ModelOverloaded,
    ModelRouter,
    Predictor,
    QueueFull,
    load,
    make_engine,
    make_server,
)
from repro.serve.metrics import DEFAULT_BOUNDS_MS


def _tiny_model(seed: int = 3, neuron_type: str = "proposed") -> SimpleCNN:
    rank = {"proposed": 2}.get(neuron_type)
    kwargs = {"rank": rank} if rank is not None else {}
    return SimpleCNN(num_classes=4, neuron_type=neuron_type, base_width=4,
                     image_size=8, seed=seed, **kwargs)


def _inputs(count: int, seed: int = 0) -> np.ndarray:
    return np.random.default_rng(seed).standard_normal((count, 3, 8, 8)) \
        .astype(np.float32)


_INFO = {"normalization": {"mean": 0.0, "std": 1.0},
         "classes": ["a", "b", "c", "d"], "input_shape": [3, 8, 8]}


@pytest.fixture
def bundles(tmp_path):
    """Two bundles that disagree on most inputs (different seeds + neurons)."""
    quad = save_bundle(tmp_path / "quad.npz", _tiny_model(seed=3), info=_INFO)
    linear = save_bundle(tmp_path / "lin.npz",
                         _tiny_model(seed=5, neuron_type="linear"), info=_INFO)
    return str(quad), str(linear)


def _managed(bundle: str, **kwargs) -> ManagedModel:
    options = {"engine": "direct", "compile": False, "warm": False}
    return ManagedModel(load(bundle, **options), source=bundle,
                        load_options=options, **kwargs)


class TestLatencyHistogram:
    def test_records_seconds_reports_milliseconds(self):
        histogram = LatencyHistogram()
        histogram.record(0.004)  # 4 ms
        summary = histogram.summary()
        assert summary["count"] == 1
        assert summary["min_ms"] == summary["max_ms"] == pytest.approx(4.0)
        assert summary["p50_ms"] == pytest.approx(4.0)

    def test_percentiles_interpolate_and_clamp_to_observed_range(self):
        histogram = LatencyHistogram()
        for ms in (1.5, 1.5, 1.5, 30.0):  # 3 in (1,2], 1 in (20,50]
            histogram.record(ms / 1000.0)
        assert 1.0 < histogram.percentile(50) <= 2.0
        # The p99 rank lands in the (20, 50] bucket, whose open end is
        # closed at the observed max: never report a latency nobody saw.
        assert histogram.percentile(99) <= 30.0
        assert histogram.percentile(1) >= 1.5

    def test_empty_histogram_reports_zeros(self):
        summary = LatencyHistogram().summary()
        assert summary["count"] == 0
        assert summary["p50_ms"] == summary["p99_ms"] == 0.0
        assert summary["mean_ms"] == 0.0

    def test_bucket_schema_is_bounds_plus_overflow(self):
        histogram = LatencyHistogram()
        histogram.record(999.0)  # way past the last bound → overflow bucket
        buckets = histogram.summary()["buckets"]
        assert [b["le_ms"] for b in buckets] == [*DEFAULT_BOUNDS_MS, None]
        assert buckets[-1]["count"] == 1

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            LatencyHistogram(bounds_ms=(5.0, 1.0))
        with pytest.raises(ValueError, match="strictly increasing"):
            LatencyHistogram(bounds_ms=())


class TestHotReload:
    def test_reload_swaps_bundle_and_answers_change(self, bundles):
        quad, linear = bundles
        model = _managed(quad)
        try:
            before = model.predict(_inputs(4)).tolist()
            result = model.reload(bundle=linear)
            assert result["status"] == "reloaded"
            assert result["previous_bundle"] == quad
            assert result["drained"] is True
            assert model.bundle_path == linear
            after = model.predict(_inputs(4)).tolist()
            expected = Predictor(_tiny_model(seed=5, neuron_type="linear"),
                                 input_shape=(3, 8, 8)) \
                .predict(_inputs(4), normalize=False).tolist()
            assert after == expected and after != before
        finally:
            model.close()

    def test_reload_closes_the_old_engine(self, bundles):
        model = _managed(bundles[0])
        old_engine = model.engine
        try:
            model.reload()
            assert old_engine.stats()["closed"] is True
            assert model.engine is not old_engine
        finally:
            model.close()

    def test_reload_without_source_requires_explicit_bundle(self):
        model = ManagedModel(Predictor(_tiny_model(), input_shape=(3, 8, 8)))
        try:
            with pytest.raises(ValueError, match="no path to reload"):
                model.reload()
        finally:
            model.close()

    def test_reload_counts_surface_in_stats_as_restarts(self, bundles):
        model = _managed(bundles[0])
        try:
            model.reload()
            model.reload(bundle=bundles[1])
            stats = model.stats()
            assert stats["restarts"] == 2
            assert stats["bundle"] == {"path": bundles[1], "reloads": 2}
        finally:
            model.close()

    def test_reload_after_close_raises_engine_closed(self, bundles):
        model = _managed(bundles[0])
        model.close()
        with pytest.raises(EngineClosed):
            model.reload()

    def test_double_close_is_idempotent(self, bundles):
        model = _managed(bundles[0])
        model.close()
        model.close()  # must not raise
        with pytest.raises(EngineClosed):
            model.predict(_inputs(1))


class TestReloadUnderStorm:
    CLIENTS = 8
    REQUESTS_EACH = 12

    def test_zero_failed_requests_across_repeated_reloads(self, bundles):
        """The acceptance criterion: an 8-client storm spanning several hot
        reloads completes with zero errors, and every retired engine is
        closed without leaking its scheduler thread."""
        quad, linear = bundles
        options = {"engine": "batched", "compile": False, "warm": False,
                   "max_wait_ms": 0.5}
        model = ManagedModel(load(quad, **options), source=quad,
                             load_options=options)
        baseline_threads = sum(
            thread.name.startswith("repro-serve-")
            for thread in threading.enumerate())
        retired_engines = []
        errors: list[Exception] = []
        successes = []
        barrier = threading.Barrier(self.CLIENTS + 1)

        def client():
            try:
                barrier.wait()
                for i in range(self.REQUESTS_EACH):
                    classes = model.predict(_inputs(2, seed=i))
                    successes.append(classes.shape)
            except Exception as error:  # noqa: BLE001 — asserted below
                errors.append(error)

        threads = [threading.Thread(target=client) for _ in range(self.CLIENTS)]
        for thread in threads:
            thread.start()
        barrier.wait()
        for bundle in (linear, quad, linear):
            retired_engines.append(model.engine)
            model.reload(bundle=bundle)
        for thread in threads:
            thread.join()

        assert errors == []
        assert len(successes) == self.CLIENTS * self.REQUESTS_EACH
        assert model.stats()["restarts"] == 3
        for engine in retired_engines:
            assert engine.stats()["closed"] is True
        model.close()
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            alive = sum(thread.name.startswith("repro-serve-")
                        for thread in threading.enumerate())
            if alive <= baseline_threads:
                break
            time.sleep(0.05)
        assert alive <= baseline_threads, "reloads leaked scheduler threads"


class TestCanaryRouting:
    def test_split_is_deterministic_and_even(self, bundles):
        quad, linear = bundles
        model = _managed(quad)
        try:
            model.set_canary(linear, percent=25.0)
            for _ in range(16):
                model.predict(_inputs(1))
            stats = model.stats()
            assert stats["requests_routed"] == {"primary": 12, "canary": 4}
            assert stats["canary"]["percent"] == 25.0
            assert stats["canary"]["latency"]["count"] == 4
        finally:
            model.close()

    def test_invalid_percent_rejected(self, bundles):
        model = _managed(bundles[0])
        try:
            with pytest.raises(ValueError, match=r"\(0, 100\]"):
                model.set_canary(bundles[1], percent=0.0)
            with pytest.raises(ValueError, match=r"\(0, 100\]"):
                model.set_canary(bundles[1], percent=150.0)
        finally:
            model.close()

    def test_promote_makes_candidate_primary_and_closes_old(self, bundles):
        quad, linear = bundles
        model = _managed(quad)
        old_engine = model.engine
        try:
            model.set_canary(linear, percent=10.0)
            result = model.promote()
            assert result["status"] == "promoted"
            assert model.bundle_path == linear
            assert model.stats()["canary"] is None
            assert old_engine.stats()["closed"] is True
        finally:
            model.close()

    def test_promote_without_canary_is_an_error(self, bundles):
        model = _managed(bundles[0])
        try:
            with pytest.raises(ValueError, match="no canary is staged"):
                model.promote()
        finally:
            model.close()

    def test_clear_canary_keeps_primary(self, bundles):
        quad, linear = bundles
        model = _managed(quad)
        try:
            model.set_canary(linear, percent=50.0)
            result = model.clear_canary()
            assert result["status"] == "canary-cleared"
            assert model.bundle_path == quad
            assert model.stats()["canary"] is None
            assert model.clear_canary()["status"] == "no-canary"
        finally:
            model.close()


class TestShadowRouting:
    def _drain_shadow(self, model, expect: int, timeout: float = 10.0) -> dict:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            counts = model.stats()["canary"]["shadow_stats"]
            if counts["compared"] + counts["errors"] + counts["dropped"] >= expect:
                return counts
            time.sleep(0.02)
        return model.stats()["canary"]["shadow_stats"]

    def test_shadow_compares_but_never_answers(self, bundles):
        quad, linear = bundles
        model = _managed(quad)
        primary = Predictor(_tiny_model(seed=3), input_shape=(3, 8, 8))
        try:
            model.set_canary(linear, shadow=True)
            answers = [model.predict(_inputs(2, seed=i)).tolist()
                       for i in range(5)]
            # Every answer came from the primary — the shadow never routes.
            expected = [primary.predict(_inputs(2, seed=i),
                                        normalize=False).tolist()
                        for i in range(5)]
            assert answers == expected
            assert model.stats()["requests_routed"]["canary"] == 0
            counts = self._drain_shadow(model, expect=5)
            assert counts["mirrored"] == 5
            assert counts["compared"] == 5
            assert counts["agreed"] + counts["mismatched"] == 5
        finally:
            model.close()

    def test_shadow_of_the_same_bundle_always_agrees(self, bundles):
        quad, _ = bundles
        model = _managed(quad)
        try:
            model.set_canary(quad, shadow=True)
            for i in range(4):
                model.predict(_inputs(2, seed=i))
            counts = self._drain_shadow(model, expect=4)
            assert counts["compared"] == 4
            assert counts["agreed"] == 4 and counts["mismatched"] == 0
        finally:
            model.close()


class TestAdmissionControl:
    def test_model_overloaded_is_queue_full(self):
        assert issubclass(ModelOverloaded, QueueFull)

    def test_cap_sheds_while_capacity_held(self, bundles):
        model = _managed(bundles[0], max_inflight=1)
        try:
            with model._lock:
                model._primary.inflight = 1  # a request is stuck in flight
            with pytest.raises(ModelOverloaded, match="admission cap 1"):
                model.predict(_inputs(1))
            assert model.stats()["admission"]["shed"] == 1
            with model._lock:
                model._primary.inflight = 0
            model.predict(_inputs(1))  # capacity released → serving resumes
        finally:
            model.close()

    def test_invalid_cap_rejected(self, bundles):
        with pytest.raises(ValueError, match="max_inflight"):
            _managed(bundles[0], max_inflight=0)

    def test_saturated_model_sheds_while_others_serve(self, bundles):
        """Per-model admission: one 429ing model must not take down its
        neighbors on the same server."""
        quad, linear = bundles
        router = ModelRouter()
        router.add("jammed", load(quad, engine="direct", compile=False,
                                  warm=False), source=quad, max_inflight=1)
        router.add("healthy", load(linear, engine="direct", compile=False,
                                   warm=False), source=linear)
        server = make_server(router, port=0, quiet=True)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = "http://%s:%s" % server.server_address[:2]
        try:
            with router.get("jammed")._lock:
                router.get("jammed")._primary.inflight = 1
            request = urllib.request.Request(
                f"{base}/v1/models/jammed/predict",
                data=json.dumps({"inputs": _inputs(1).tolist()}).encode())
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=30)
            assert excinfo.value.code == 429
            assert excinfo.value.headers["Retry-After"] == "1"
            healthy = _post_json(f"{base}/v1/models/healthy/predict",
                                 {"inputs": _inputs(1).tolist()})
            assert healthy["count"] == 1
        finally:
            with router.get("jammed")._lock:
                router.get("jammed")._primary.inflight = 0
            server.shutdown()
            router.close()
            server.server_close()


class TestRouterControlPlane:
    def test_router_wraps_plain_predictors(self):
        router = ModelRouter({"m": Predictor(_tiny_model(),
                                             input_shape=(3, 8, 8))})
        assert isinstance(router.get("m"), ManagedModel)

    def test_managed_models_pass_through_unwrapped(self, bundles):
        router = ModelRouter()
        mounted = router.add("a", load(bundles[0], engine="direct",
                                       compile=False, warm=False),
                             source=bundles[0])
        router.add("b", router.get("a"))
        assert router.get("b") is mounted
        router.close()

    def test_router_close_is_idempotent_and_blocks_new_mounts(self, bundles):
        router = ModelRouter()
        router.add("m", load(bundles[0], engine="direct", compile=False,
                             warm=False), source=bundles[0])
        router.close()
        router.close()  # shared mounts / double close must not raise
        with pytest.raises(EngineClosed, match="router is closed"):
            router.add("late", Predictor(_tiny_model()))
        with pytest.raises(EngineClosed):
            router.reload("m")

    def test_router_delegates_control_verbs(self, bundles):
        quad, linear = bundles
        router = ModelRouter()
        router.add("m", load(quad, engine="direct", compile=False,
                             warm=False), source=quad,
                   load_options={"engine": "direct", "compile": False})
        try:
            assert router.reload("m")["status"] == "reloaded"
            assert router.set_canary("m", bundle=linear,
                                     percent=20.0)["status"] == "canary"
            assert router.promote("m")["status"] == "promoted"
            assert router.clear_canary("m")["status"] == "no-canary"
            with pytest.raises(ValueError, match="candidate bundle"):
                router.set_canary("m")
        finally:
            router.close()


def _post_json(url: str, payload: dict | None = None, method: str = "POST"):
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(
        url, data=data, method=method,
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.load(response)


@pytest.fixture
def live_server(bundles):
    """A served bundle with the admin API on, plus the second bundle's path."""
    from repro.serve.http import serve

    quad, linear = bundles
    captured = {}
    done = threading.Event()

    def run():
        serve(models={"main": quad}, port=0, quiet=True, engine="batched",
              max_wait_ms=0.5, compile=False,
              ready=lambda server: captured.update(server=server))
        done.set()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    deadline = time.monotonic() + 10
    while "server" not in captured and time.monotonic() < deadline:
        time.sleep(0.02)
    server = captured["server"]
    base = "http://%s:%s" % server.server_address[:2]
    yield base, quad, linear
    server.shutdown()
    assert done.wait(10)


class TestAdminAPI:
    def test_reload_canary_promote_clear_over_http(self, live_server):
        base, quad, linear = live_server
        result = _post_json(f"{base}/v1/admin/models/main/reload",
                            {"bundle": linear})
        assert result["status"] == "reloaded"
        assert result["bundle"] == linear

        result = _post_json(f"{base}/v1/admin/models/main/canary",
                            {"bundle": quad, "percent": 50})
        assert result["percent"] == 50.0
        for i in range(4):
            _post_json(f"{base}/v1/models/main/predict",
                       {"inputs": _inputs(1, seed=i).tolist()})
        stats = _post_json(f"{base}/v1/models/main/stats", method="GET")
        assert stats["requests_routed"] == {"primary": 2, "canary": 2}

        result = _post_json(f"{base}/v1/admin/models/main/promote")
        assert result["status"] == "promoted"
        assert result["bundle"] == quad

        result = _post_json(f"{base}/v1/admin/models/main/canary",
                            {"bundle": linear, "percent": 10})
        result = _post_json(f"{base}/v1/admin/models/main/canary",
                            method="DELETE")
        assert result["status"] == "canary-cleared"

    def _expect_error(self, url, code, payload=None, method="POST"):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post_json(url, payload, method=method)
        assert excinfo.value.code == code
        return json.load(excinfo.value)["error"]

    def test_admin_error_statuses(self, live_server):
        base, quad, linear = live_server
        assert "valid" in self._expect_error(
            f"{base}/v1/admin/models/main/frobnicate", 404)
        assert "available models" in self._expect_error(
            f"{base}/v1/admin/models/ghost/reload", 404)
        assert '"bundle"' in self._expect_error(
            f"{base}/v1/admin/models/main/canary", 400, payload={})
        assert "no canary" in self._expect_error(
            f"{base}/v1/admin/models/main/promote", 400)
        assert "JSON object" in self._expect_error(
            f"{base}/v1/admin/models/main/reload", 400, payload=[1, 2])

    def test_admin_disabled_returns_403(self, bundles):
        predictor = Predictor(_tiny_model(), input_shape=(3, 8, 8))
        server = make_server(predictor, port=0, quiet=True, admin=False)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = "http://%s:%s" % server.server_address[:2]
        try:
            error = self._expect_error(
                f"{base}/v1/admin/models/default/reload", 403)
            assert "disabled" in error
        finally:
            server.shutdown()
            server.router.close()
            server.server_close()

    def test_http_storm_with_midstream_reload_has_zero_failures(self, live_server):
        """The acceptance criterion over HTTP: 8 concurrent clients storm
        /v1/models/main/predict while the bundle is hot-reloaded; every
        single response is a 200."""
        base, quad, linear = live_server
        clients, each = 8, 6
        statuses: list[int] = []
        errors: list[Exception] = []
        barrier = threading.Barrier(clients + 1)
        payload = json.dumps({"inputs": _inputs(2).tolist()}).encode()

        def client():
            try:
                barrier.wait()
                for _ in range(each):
                    request = urllib.request.Request(
                        f"{base}/v1/models/main/predict", data=payload,
                        headers={"Content-Type": "application/json"})
                    with urllib.request.urlopen(request, timeout=60) as response:
                        statuses.append(response.status)
            except Exception as error:  # noqa: BLE001 — asserted below
                errors.append(error)

        threads = [threading.Thread(target=client) for _ in range(clients)]
        for thread in threads:
            thread.start()
        barrier.wait()
        _post_json(f"{base}/v1/admin/models/main/reload", {"bundle": linear})
        _post_json(f"{base}/v1/admin/models/main/reload", {"bundle": quad})
        for thread in threads:
            thread.join()
        assert errors == []
        assert statuses == [200] * (clients * each)
        stats = _post_json(f"{base}/v1/stats", method="GET")
        assert stats["models"]["main"]["restarts"] == 2
        assert stats["models"]["main"]["bundle"]["path"] == quad


class TestStatsSchemaV2:
    def test_v1_stats_shape_is_pinned(self, live_server):
        base, quad, linear = live_server
        _post_json(f"{base}/v1/models/main/predict",
                   {"inputs": _inputs(2).tolist()})
        document = _post_json(f"{base}/v1/stats", method="GET")
        assert document["schema_version"] == 2
        assert set(document["server"]) == {"uptime_seconds", "version", "pid"}
        assert document["server"]["uptime_seconds"] >= 0
        assert isinstance(document["server"]["pid"], int)

        entry = document["models"]["main"]
        # The stable v2 sections.
        for section in ("scheduler", "plan_cache", "latency", "admission",
                        "bundle", "canary", "requests_routed"):
            assert section in entry, section
        assert entry["scheduler"]["engine"] == "batched"
        assert entry["bundle"]["path"] == quad
        assert entry["latency"]["count"] >= 1
        assert {"p50_ms", "p95_ms", "p99_ms", "buckets"} <= set(entry["latency"])
        assert entry["admission"] == {"max_inflight": None, "inflight": 0,
                                      "shed": 0}
        assert entry["canary"] is None
        # Legacy flat aliases, kept for one release: engine is still the
        # engine *name* and the scheduler counters stay at the top level.
        assert entry["engine"] == "batched"
        assert entry["requests"] >= 1
        assert entry["samples"] >= 2
        assert entry["queue_depth"] == 0
        # restarts now means *model reloads* at the top level (the pool
        # engine's worker respawns live under scheduler.restarts).
        assert entry["restarts"] == 0

    def test_per_model_stats_endpoint_matches_models_entry(self, live_server):
        base, _, _ = live_server
        entry = _post_json(f"{base}/v1/stats", method="GET")["models"]["main"]
        single = _post_json(f"{base}/v1/models/main/stats", method="GET")
        assert single["name"] == "main"
        assert single["bundle"] == entry["bundle"]
        assert set(entry) <= set(single) - {"name"} | set(entry)

    def test_direct_engine_reports_queue_depth(self):
        from repro.serve import DirectEngine, InferenceSession

        engine = DirectEngine(InferenceSession(_tiny_model()))
        assert engine.stats()["queue_depth"] == 0


class TestDeprecationShims:
    def test_legacy_routes_emit_deprecation_headers(self, live_server):
        base, _, _ = live_server
        with urllib.request.urlopen(f"{base}/healthz", timeout=30) as response:
            assert response.headers["Deprecation"] == "true"
            assert "/v1/models" in response.headers["Link"]
            assert "successor-version" in response.headers["Link"]
        request = urllib.request.Request(
            f"{base}/predict",
            data=json.dumps({"inputs": _inputs(1).tolist()}).encode(),
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(request, timeout=30) as response:
            assert response.headers["Deprecation"] == "true"
            assert "/v1/models/main/predict" in response.headers["Link"]

    def test_v1_routes_are_not_deprecated(self, live_server):
        base, _, _ = live_server
        with urllib.request.urlopen(f"{base}/v1/models", timeout=30) as response:
            assert response.headers["Deprecation"] is None


class TestErrorMessages:
    def test_make_engine_enumerates_valid_choices(self):
        from repro.serve import InferenceSession

        with pytest.raises(ValueError) as excinfo:
            make_engine("bacthed", InferenceSession(_tiny_model()))
        message = str(excinfo.value)
        for name in ("'direct'", "'batched'", "'pool'"):
            assert name in message

    def test_serve_enumerates_engines_on_typo(self, bundles):
        from repro.serve.http import serve

        with pytest.raises(ValueError) as excinfo:
            serve(models={"m": bundles[0]}, engine="bacthed")
        message = str(excinfo.value)
        assert "valid engines" in message
        for name in ("'direct'", "'batched'", "'pool'"):
            assert name in message

    def test_serve_enumerates_engines_on_per_model_typo(self, bundles):
        from repro.serve.http import serve

        with pytest.raises(ValueError) as excinfo:
            serve(models={"m": {"path": bundles[0], "engine": "poool"}})
        assert "model 'm'" in str(excinfo.value)
        assert "'pool'" in str(excinfo.value)

    def test_serve_unknown_default_model_enumerates_mounted(self, bundles):
        from repro.serve.http import serve

        with pytest.raises(KeyError, match="available models: m"):
            serve(models={"m": bundles[0]}, default_model="typo")


class TestPromoteCLI:
    def test_promote_resolves_artifact_bundles_and_swaps(self, live_server,
                                                         tmp_path, capsys):
        base, quad, linear = live_server
        # A sweep artifact recording its bundles relative to its cache dir —
        # exactly what the experiment runner writes into meta.bundles.
        import os
        artifact = tmp_path / "fig0-abc123.json"
        artifact.write_text(json.dumps(
            {"meta": {"bundles": [os.path.basename(linear)]}}))
        assert cli.main(["promote", str(artifact), "--server", base]) == 0
        output = json.loads(capsys.readouterr().out)
        assert output["status"] == "reloaded"
        stats = _post_json(f"{base}/v1/stats", method="GET")
        assert stats["models"]["main"]["bundle"]["path"] == linear

    def test_promote_canary_then_finalize(self, live_server, capsys):
        base, quad, linear = live_server
        assert cli.main(["promote", linear, "--server", base,
                         "--canary", "25"]) == 0
        assert json.loads(capsys.readouterr().out)["percent"] == 25.0
        assert cli.main(["promote", "--finalize", "--server", base]) == 0
        assert json.loads(capsys.readouterr().out)["status"] == "promoted"
        stats = _post_json(f"{base}/v1/stats", method="GET")
        assert stats["models"]["main"]["bundle"]["path"] == linear

    def test_reload_verb_reloads_default_model(self, live_server, capsys):
        base, quad, _ = live_server
        assert cli.main(["reload", "--server", base]) == 0
        output = json.loads(capsys.readouterr().out)
        assert output["status"] == "reloaded"
        assert output["bundle"] == quad

    def test_promote_argument_validation(self, capsys):
        assert cli.main(["promote"]) == 1
        assert "name a bundle" in capsys.readouterr().err
        assert cli.main(["promote", "x.npz", "--finalize"]) == 1
        assert "drop the TARGET" in capsys.readouterr().err

    def test_promote_unreachable_server_is_a_clean_error(self, tmp_path,
                                                         capsys):
        bundle = tmp_path / "m.npz"
        bundle.write_bytes(b"")
        assert cli.main(["promote", str(bundle),
                         "--server", "http://127.0.0.1:9"]) == 1
        assert "cannot reach the server" in capsys.readouterr().err

    def test_artifact_without_bundles_is_a_clean_error(self, tmp_path, capsys):
        artifact = tmp_path / "fig0-empty.json"
        artifact.write_text(json.dumps({"meta": {}}))
        assert cli.main(["promote", str(artifact),
                         "--server", "http://127.0.0.1:9"]) == 1
        assert "meta.bundles" in capsys.readouterr().err

    def test_bundle_index_out_of_range_is_a_clean_error(self, tmp_path,
                                                        capsys):
        artifact = tmp_path / "fig0-one.json"
        artifact.write_text(json.dumps({"meta": {"bundles": ["a.npz"]}}))
        assert cli.main(["promote", str(artifact), "--bundle-index", "3",
                         "--server", "http://127.0.0.1:9"]) == 1
        assert "out of range" in capsys.readouterr().err


class TestBenchLatency:
    def test_serving_benchmark_reports_percentiles(self):
        from repro import bench

        result = bench.serving_benchmarks(rounds=1, warmup=0, clients=2,
                                          requests_per_client=3)
        for side in ("direct_latency", "batched_latency"):
            summary = result[side]
            assert summary["count"] == 6
            assert summary["p50_ms"] > 0
            assert summary["p50_ms"] <= summary["p95_ms"] <= summary["p99_ms"]
