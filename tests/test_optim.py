"""Tests for optimizers, parameter groups and learning-rate schedules."""

import numpy as np
import pytest

from repro import nn
from repro.optim import (
    SGD,
    Adam,
    CosineAnnealingLR,
    MultiStepLR,
    NoamLR,
    split_parameter_groups,
)
from repro.tensor import Tensor


def _quadratic_bowl(parameter):
    """Convex objective with minimum at 3."""
    return ((parameter - 3.0) ** 2).sum()


class TestSGD:
    def test_converges_on_quadratic_bowl(self):
        p = nn.Parameter(np.zeros(4, dtype=np.float64))
        optimizer = SGD([p], lr=0.1, momentum=0.0)
        for _ in range(200):
            optimizer.zero_grad()
            _quadratic_bowl(p).backward()
            optimizer.step()
        np.testing.assert_allclose(p.data, 3.0, atol=1e-3)

    def test_momentum_accelerates(self):
        def run(momentum):
            p = nn.Parameter(np.zeros(1, dtype=np.float64))
            optimizer = SGD([p], lr=0.01, momentum=momentum)
            for _ in range(50):
                optimizer.zero_grad()
                _quadratic_bowl(p).backward()
                optimizer.step()
            return abs(float(p.data[0]) - 3.0)

        assert run(0.9) < run(0.0)

    def test_weight_decay_shrinks_parameters(self):
        p = nn.Parameter(np.full(3, 5.0, dtype=np.float64))
        optimizer = SGD([p], lr=0.1, momentum=0.0, weight_decay=0.5)
        optimizer.zero_grad()
        (p.sum() * 0.0).backward()
        optimizer.step()
        assert np.all(np.abs(p.data) < 5.0)

    def test_skips_parameters_without_gradient(self):
        p = nn.Parameter(np.ones(2))
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, 1.0)

    def test_nesterov_runs(self):
        p = nn.Parameter(np.zeros(2, dtype=np.float64))
        optimizer = SGD([p], lr=0.05, momentum=0.9, nesterov=True)
        for _ in range(100):
            optimizer.zero_grad()
            _quadratic_bowl(p).backward()
            optimizer.step()
        np.testing.assert_allclose(p.data, 3.0, atol=0.05)


class TestAdam:
    def test_converges_on_quadratic_bowl(self):
        p = nn.Parameter(np.zeros(4, dtype=np.float64))
        optimizer = Adam([p], lr=0.1)
        for _ in range(300):
            optimizer.zero_grad()
            _quadratic_bowl(p).backward()
            optimizer.step()
        np.testing.assert_allclose(p.data, 3.0, atol=1e-2)

    def test_bias_correction_first_step(self):
        p = nn.Parameter(np.array([10.0], dtype=np.float64))
        optimizer = Adam([p], lr=0.5)
        optimizer.zero_grad()
        _quadratic_bowl(p).backward()
        optimizer.step()
        # With bias correction the very first step has magnitude ≈ lr.
        assert abs(float(p.data[0]) - 10.0) == pytest.approx(0.5, rel=0.01)


class TestParameterGroups:
    def test_split_by_quadratic_tag(self):
        model = nn.Sequential(nn.Linear(4, 4, rng=np.random.default_rng(0)))
        model.add_module("extra", _QuadraticTagged())
        groups = split_parameter_groups(model, base_lr=0.1, quadratic_lr=1e-4)
        assert len(groups) == 2
        assert groups[0]["lr"] == 0.1
        assert groups[1]["lr"] == 1e-4
        assert all(p.tag == "quadratic" for p in groups[1]["params"])

    def test_no_quadratic_parameters_single_group(self):
        model = nn.Linear(4, 4, rng=np.random.default_rng(0))
        groups = split_parameter_groups(model, base_lr=0.1, quadratic_lr=1e-4)
        assert len(groups) == 1

    def test_group_learning_rates_applied(self):
        fast = nn.Parameter(np.zeros(1, dtype=np.float64))
        slow = nn.Parameter(np.zeros(1, dtype=np.float64))
        optimizer = SGD([{"params": [fast], "lr": 1.0}, {"params": [slow], "lr": 0.01}],
                        lr=0.5, momentum=0.0)
        optimizer.zero_grad()
        ((fast - 1.0) ** 2 + (slow - 1.0) ** 2).sum().backward()
        optimizer.step()
        assert abs(float(fast.data[0])) > abs(float(slow.data[0]))

    def test_clip_grad_norm(self):
        p = nn.Parameter(np.zeros(3, dtype=np.float64))
        optimizer = SGD([p], lr=0.1)
        optimizer.zero_grad()
        (p * Tensor(np.array([100.0, 100.0, 100.0]))).sum().backward()
        norm = optimizer.clip_grad_norm(1.0)
        assert norm == pytest.approx(np.sqrt(3) * 100, rel=1e-5)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0, rel=1e-5)


class _QuadraticTagged(nn.Module):
    def __init__(self):
        super().__init__()
        self.lambdas = nn.Parameter(np.zeros(3, dtype=np.float32), tag="quadratic")

    def forward(self, x):
        return x


class TestSchedulers:
    def _optimizer(self):
        return SGD([nn.Parameter(np.zeros(1))], lr=1.0)

    def test_multistep_decays_at_milestones(self):
        optimizer = self._optimizer()
        scheduler = MultiStepLR(optimizer, milestones=[2, 4], gamma=0.1)
        lrs = []
        for _ in range(5):
            scheduler.step()
            lrs.append(optimizer.param_groups[0]["lr"])
        np.testing.assert_allclose(lrs, [1.0, 0.1, 0.1, 0.01, 0.01], rtol=1e-6)

    def test_multistep_scales_all_groups(self):
        optimizer = SGD([{"params": [nn.Parameter(np.zeros(1))], "lr": 1.0},
                         {"params": [nn.Parameter(np.zeros(1))], "lr": 1e-4}], lr=1.0)
        scheduler = MultiStepLR(optimizer, milestones=[1], gamma=0.1)
        scheduler.step()
        assert optimizer.param_groups[0]["lr"] == pytest.approx(0.1)
        assert optimizer.param_groups[1]["lr"] == pytest.approx(1e-5)

    def test_noam_warmup_then_decay(self):
        optimizer = self._optimizer()
        scheduler = NoamLR(optimizer, model_dim=64, warmup_steps=10)
        factors = [scheduler.get_factor(step) for step in range(1, 40)]
        peak = int(np.argmax(factors)) + 1
        assert peak == 10
        assert factors[0] < factors[9] > factors[-1]

    def test_cosine_monotone_decay(self):
        optimizer = self._optimizer()
        scheduler = CosineAnnealingLR(optimizer, total_steps=10)
        factors = [scheduler.get_factor(step) for step in range(1, 11)]
        assert all(a >= b for a, b in zip(factors, factors[1:]))
        assert factors[-1] == pytest.approx(0.0, abs=1e-6)

    def test_current_lrs(self):
        optimizer = self._optimizer()
        scheduler = MultiStepLR(optimizer, milestones=[1])
        scheduler.step()
        assert scheduler.current_lrs() == [optimizer.param_groups[0]["lr"]]

    def test_load_state_dict_restores_step_zero_over_decayed_lr(self):
        optimizer = self._optimizer()
        scheduler = MultiStepLR(optimizer, milestones=[1], gamma=0.1)
        fresh = scheduler.state_dict()  # last_step == 0, base lr in effect
        scheduler.step()
        assert optimizer.param_groups[0]["lr"] == pytest.approx(0.1)
        scheduler.load_state_dict(fresh)
        # Restoring the step-0 snapshot must undo the decay, not keep it.
        assert scheduler.last_step == 0
        assert optimizer.param_groups[0]["lr"] == pytest.approx(1.0)

    def test_load_state_dict_reapplies_decayed_schedule(self):
        optimizer = self._optimizer()
        scheduler = MultiStepLR(optimizer, milestones=[2], gamma=0.1)
        scheduler.step(), scheduler.step()
        snapshot = scheduler.state_dict()
        restored_optimizer = SGD([nn.Parameter(np.zeros(1))], lr=1.0)
        restored = MultiStepLR(restored_optimizer, milestones=[2], gamma=0.1)
        restored.load_state_dict(snapshot)
        assert restored.last_step == 2
        assert restored_optimizer.param_groups[0]["lr"] == pytest.approx(0.1)
