"""Tests for the analysis tools behind Figs. 6, 7 and 8."""

import numpy as np
import pytest

from repro.analysis import (
    StabilityReport,
    analyze_history,
    collect_parameter_distribution,
    compare_stability,
    frequency_energy_split,
    layer_responses,
    quadratic_significance,
)
from repro.models import CifarResNet, SimpleCNN
from repro.quadratic import EfficientQuadraticConv2d
from repro.training import History


class TestParameterDistribution:
    def test_collect_from_quadratic_resnet(self):
        model = CifarResNet(8, neuron_type="proposed", rank=3, base_width=4, seed=0)
        stats = collect_parameter_distribution(model)
        kinds = {stat.kind for stat in stats}
        assert kinds == {"linear", "quadratic"}
        quadratic_stats = [stat for stat in stats if stat.kind == "quadratic"]
        assert len(quadratic_stats) == model.num_conv_layers

    def test_collect_from_linear_resnet_has_no_quadratic(self):
        model = CifarResNet(8, neuron_type="linear", base_width=4, seed=0)
        stats = collect_parameter_distribution(model)
        assert all(stat.kind == "linear" for stat in stats)

    def test_layer_indices_are_consecutive(self):
        model = SimpleCNN(neuron_type="proposed", rank=3, base_width=4, seed=0)
        stats = collect_parameter_distribution(model)
        indices = sorted({stat.layer_index for stat in stats})
        assert indices == list(range(1, len(indices) + 1))

    def test_stats_fields_consistent(self):
        model = SimpleCNN(neuron_type="proposed", rank=3, base_width=4, seed=0)
        for stat in collect_parameter_distribution(model):
            assert stat.minimum <= stat.quantile_05 <= stat.quantile_95 <= stat.maximum
            assert stat.count > 0

    def test_quadratic_significance_keys(self):
        model = CifarResNet(8, neuron_type="proposed", rank=3, base_width=4, seed=0)
        significance = quadratic_significance(collect_parameter_distribution(model))
        assert len(significance) == model.num_conv_layers
        assert all(value >= 0 for value in significance.values())


class TestResponseAnalysis:
    def _layer_and_images(self):
        rng = np.random.default_rng(0)
        layer = EfficientQuadraticConv2d(3, 2, 3, padding=1, rank=3,
                                         rng=np.random.default_rng(1))
        images = rng.standard_normal((2, 3, 8, 8)).astype(np.float32)
        return layer, images

    def test_layer_responses_shapes(self):
        layer, images = self._layer_and_images()
        responses = layer_responses(layer, images)
        assert responses.linear.shape == (2, 2, 8, 8)
        assert responses.quadratic.shape == (2, 2, 8, 8)
        assert responses.combined.shape == (2, 2, 8, 8)

    def test_responses_match_layer_forward(self):
        """linear + quadratic must equal the response channels of the layer output."""
        from repro.tensor import Tensor
        layer, images = self._layer_and_images()
        responses = layer_responses(layer, images)
        full = layer(Tensor(images)).data
        np.testing.assert_allclose(responses.combined, full[:, :2], rtol=1e-4, atol=1e-5)

    def test_rejects_non_quadratic_layer(self):
        from repro import nn
        with pytest.raises(TypeError):
            layer_responses(nn.Conv2d(3, 4, 3), np.zeros((1, 3, 8, 8), dtype=np.float32))

    def test_frequency_split_fractions_sum_to_one(self):
        rng = np.random.default_rng(2)
        split = frequency_energy_split(rng.standard_normal((4, 16, 16)))
        assert split["low_fraction"] + split["high_fraction"] == pytest.approx(1.0)

    def test_constant_image_is_all_low_frequency(self):
        split = frequency_energy_split(np.ones((8, 8)))
        assert split["low_fraction"] == pytest.approx(1.0)

    def test_checkerboard_is_high_frequency(self):
        checkerboard = np.indices((16, 16)).sum(axis=0) % 2
        split = frequency_energy_split(checkerboard.astype(np.float64) - 0.5)
        assert split["high_fraction"] > 0.9

    def test_zero_input(self):
        split = frequency_energy_split(np.zeros((4, 4)))
        assert split["total_energy"] == 0.0


class TestStability:
    def _history(self, losses, accuracies=None, diverged_at=None, eval_losses=None):
        history = History()
        for index, loss in enumerate(losses):
            record = {"train_loss": loss,
                      "train_accuracy": (accuracies or [0.5] * len(losses))[index],
                      "diverged": diverged_at is not None and index + 1 >= diverged_at}
            if eval_losses is not None:
                record["eval_loss"] = eval_losses[index]
            history.append(**record)
        return history

    def test_stable_run(self):
        report = analyze_history(self._history([2.0, 1.0, 0.5]), label="stable")
        assert not report.diverged
        assert report.divergence_epoch is None
        assert report.final_train_loss == 0.5

    def test_diverged_run_detected(self):
        report = analyze_history(self._history([2.0, 50.0, float("inf")], diverged_at=3),
                                 label="boom")
        assert report.diverged
        assert report.divergence_epoch == 3

    def test_nan_loss_marks_divergence(self):
        report = analyze_history(self._history([2.0, float("nan")]))
        assert report.diverged

    def test_fluctuation_larger_for_oscillating_loss(self):
        smooth = analyze_history(self._history([3.0, 2.5, 2.0, 1.5]))
        jumpy = analyze_history(self._history([3.0, 1.0, 4.0, 0.5]))
        assert jumpy.loss_fluctuation > smooth.loss_fluctuation

    def test_eval_extreme_values_flag(self):
        report = analyze_history(self._history([1.0, 0.9], eval_losses=[0.8, 1e5]))
        assert report.eval_extreme_values

    def test_compare_ranks_stable_first(self):
        stable = analyze_history(self._history([1.0, 0.5], accuracies=[0.6, 0.9]), "ours")
        diverged = analyze_history(self._history([1.0, float("nan")]), "knn")
        comparison = compare_stability([diverged, stable])
        assert comparison["ranking"][0] == "ours"
        assert comparison["diverged"] == ["knn"]

    def test_report_as_dict(self):
        report = StabilityReport("x", False, None, 0.1, 0.9, 0.8, 0.01, 1.0)
        assert report.as_dict()["label"] == "x"
