"""Tests for the composite differentiable functions (softmax family, losses, dropout)."""

import numpy as np
import pytest

from repro.tensor import Tensor
from repro.tensor import functional as F


class TestSoftmaxFamily:
    def setup_method(self):
        self.rng = np.random.default_rng(0)
        self.logits = self.rng.standard_normal((4, 7)).astype(np.float64)

    def test_softmax_sums_to_one(self):
        probs = F.softmax(Tensor(self.logits), axis=-1)
        np.testing.assert_allclose(probs.data.sum(axis=-1), np.ones(4), rtol=1e-6)

    def test_softmax_positive(self):
        probs = F.softmax(Tensor(self.logits), axis=-1)
        assert np.all(probs.data > 0)

    def test_softmax_matches_reference(self):
        expected = np.exp(self.logits) / np.exp(self.logits).sum(axis=-1, keepdims=True)
        np.testing.assert_allclose(F.softmax(Tensor(self.logits)).data, expected, rtol=1e-6)

    def test_softmax_shift_invariance(self):
        shifted = F.softmax(Tensor(self.logits + 100.0))
        np.testing.assert_allclose(shifted.data, F.softmax(Tensor(self.logits)).data, rtol=1e-5)

    def test_softmax_numerical_stability_large_values(self):
        probs = F.softmax(Tensor(np.array([[1e4, 0.0, -1e4]])))
        assert np.all(np.isfinite(probs.data))
        np.testing.assert_allclose(probs.data[0, 0], 1.0, atol=1e-6)

    def test_log_softmax_equals_log_of_softmax(self):
        log_probs = F.log_softmax(Tensor(self.logits))
        np.testing.assert_allclose(log_probs.data, np.log(F.softmax(Tensor(self.logits)).data),
                                   rtol=1e-5)

    def test_logsumexp_matches_scipy_style_reference(self):
        expected = np.log(np.exp(self.logits).sum(axis=-1))
        np.testing.assert_allclose(F.logsumexp(Tensor(self.logits), axis=-1).data,
                                   expected, rtol=1e-6)

    def test_softmax_other_axis(self):
        probs = F.softmax(Tensor(self.logits), axis=0)
        np.testing.assert_allclose(probs.data.sum(axis=0), np.ones(7), rtol=1e-6)


class TestActivations:
    def test_gelu_known_values(self):
        x = Tensor(np.array([0.0, 100.0, -100.0]))
        out = F.gelu(x)
        np.testing.assert_allclose(out.data, [0.0, 100.0, 0.0], atol=1e-5)

    def test_silu_matches_definition(self):
        x = np.array([-2.0, 0.0, 3.0])
        expected = x / (1 + np.exp(-x))
        np.testing.assert_allclose(F.silu(Tensor(x)).data, expected, rtol=1e-6)

    def test_leaky_relu(self):
        x = Tensor(np.array([-2.0, 3.0]))
        np.testing.assert_allclose(F.leaky_relu(x, 0.1).data, [-0.2, 3.0], rtol=1e-6)


class TestDropout:
    def test_eval_mode_is_identity(self):
        x = Tensor(np.ones((10, 10)))
        out = F.dropout(x, 0.5, training=False)
        np.testing.assert_allclose(out.data, x.data)

    def test_zero_probability_is_identity(self):
        x = Tensor(np.ones((5, 5)))
        assert F.dropout(x, 0.0, training=True) is x

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), 1.0, training=True)

    def test_scaling_preserves_expectation(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, 0.3, training=True, rng=rng)
        assert out.data.mean() == pytest.approx(1.0, abs=0.02)

    def test_dropped_elements_are_zero(self):
        rng = np.random.default_rng(1)
        out = F.dropout(Tensor(np.ones(1000)), 0.5, training=True, rng=rng)
        dropped_fraction = float((out.data == 0).mean())
        assert 0.4 < dropped_fraction < 0.6


class TestOneHot:
    def test_shape_and_values(self):
        encoded = F.one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_allclose(encoded, np.eye(3)[[0, 2, 1]])

    def test_2d_labels(self):
        encoded = F.one_hot(np.array([[0, 1], [2, 0]]), 3)
        assert encoded.shape == (2, 2, 3)
        assert encoded[1, 0, 2] == 1.0


class TestCrossEntropy:
    def setup_method(self):
        self.rng = np.random.default_rng(3)

    def test_matches_manual_computation(self):
        logits = self.rng.standard_normal((6, 4)).astype(np.float64)
        targets = np.array([0, 1, 2, 3, 0, 1])
        loss = F.cross_entropy_with_logits(Tensor(logits), targets)
        shifted = logits - logits.max(axis=1, keepdims=True)
        log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        expected = -log_probs[np.arange(6), targets].mean()
        assert float(loss.data) == pytest.approx(expected, rel=1e-5)

    def test_perfect_prediction_low_loss(self):
        logits = np.full((3, 4), -20.0)
        logits[np.arange(3), [1, 2, 3]] = 20.0
        loss = F.cross_entropy_with_logits(Tensor(logits), np.array([1, 2, 3]))
        assert float(loss.data) < 1e-3

    def test_label_smoothing_increases_confident_loss(self):
        logits = np.full((3, 4), -10.0)
        logits[np.arange(3), [0, 1, 2]] = 10.0
        plain = F.cross_entropy_with_logits(Tensor(logits), np.array([0, 1, 2]))
        smoothed = F.cross_entropy_with_logits(Tensor(logits), np.array([0, 1, 2]),
                                               label_smoothing=0.1)
        assert float(smoothed.data) > float(plain.data)

    def test_ignore_index_masks_positions(self):
        logits = self.rng.standard_normal((2, 3, 5)).astype(np.float64)
        targets = np.array([[1, 2, 0], [3, 0, 0]])
        loss_masked = F.cross_entropy_with_logits(Tensor(logits), targets, ignore_index=0)
        # Only the three non-padding positions should contribute.
        log_probs = logits - logits.max(axis=-1, keepdims=True)
        log_probs = log_probs - np.log(np.exp(log_probs).sum(axis=-1, keepdims=True))
        contributions = [-log_probs[0, 0, 1], -log_probs[0, 1, 2], -log_probs[1, 0, 3]]
        assert float(loss_masked.data) == pytest.approx(np.mean(contributions), rel=1e-5)

    def test_sequence_logits_supported(self):
        logits = self.rng.standard_normal((2, 4, 6))
        targets = self.rng.integers(0, 6, size=(2, 4))
        loss = F.cross_entropy_with_logits(Tensor(logits), targets)
        assert np.isfinite(float(loss.data))


class TestMSE:
    def test_zero_for_equal_inputs(self):
        x = Tensor(np.ones((3, 3)))
        assert float(F.mse_loss(x, np.ones((3, 3))).data) == pytest.approx(0.0)

    def test_known_value(self):
        prediction = Tensor(np.array([1.0, 3.0]))
        assert float(F.mse_loss(prediction, np.array([0.0, 0.0])).data) == pytest.approx(5.0)
