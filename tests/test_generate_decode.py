"""Incremental KV-cached decoding: byte-identity with the full-prefix path."""

import numpy as np
import pytest

from repro.data import SyntheticTranslationTask
from repro.experiments import get_scale
from repro.experiments.table2 import build_transformer
from repro.models import Transformer
from repro.serve.generate import (
    GreedyStrategy,
    SamplingStrategy,
    make_strategy,
    token_logprobs,
)
from repro.tensor import no_grad
from repro.training import Seq2SeqTrainer

BOS, EOS, PAD = 1, 2, 0


def _tiny_transformer(max_len: int = 24, seed: int = 0,
                      neuron_type: str = "proposed") -> Transformer:
    # Odd vocabulary sizes on purpose: the generator projection then has a
    # SIMD tail block, the hardest case for the byte-identity guarantee.
    model = Transformer(src_vocab_size=53, tgt_vocab_size=47, model_dim=16,
                        num_heads=4, num_layers=2, hidden_dim=32,
                        neuron_type=neuron_type, rank=2, max_len=max_len,
                        seed=seed)
    model.eval()
    return model


def _sources(batch: int, length: int, seed: int = 0) -> np.ndarray:
    return np.random.default_rng(seed).integers(4, 53, size=(batch, length))


def _reference_last_logits(model: Transformer, src_ids: np.ndarray,
                           prefix: np.ndarray) -> np.ndarray:
    """Full-prefix recompute: logits for the last position of each row."""
    with no_grad():
        memory, src_mask = model.encode(src_ids)
        logits = model.decode(prefix, memory, src_mask)
    return logits.data[:, -1, :].copy()


class TestByteIdentity:
    @pytest.mark.parametrize("batch", [2, 5])
    def test_decode_step_matches_full_prefix_recompute(self, batch):
        """Every step's logits are byte-for-byte those of the O(T²) path."""
        model = _tiny_transformer()
        src_ids = _sources(batch, 7, seed=batch)
        tokens = np.random.default_rng(batch + 100).integers(
            4, 47, size=(batch, 10))
        state = model.start_decode(src_ids)
        prefix = np.full((batch, 1), BOS, dtype=np.int64)
        rows = np.arange(batch)
        fed = np.full(batch, BOS, dtype=np.int64)
        for step in range(10):
            incremental = model.decode_step(state, fed, rows=rows)
            reference = _reference_last_logits(model, src_ids, prefix)
            assert np.array_equal(incremental, reference), \
                f"batch={batch} step={step}: logits diverged"
            fed = tokens[:, step]
            prefix = np.concatenate([prefix, fed[:, None]], axis=1)

    def test_ragged_sources_and_early_retirement(self):
        """Rows with padded sources that retire at different steps stay exact."""
        model = _tiny_transformer()
        src_ids = _sources(3, 8, seed=7)
        src_ids[0, 5:] = PAD  # ragged: row 0 is shorter
        src_ids[2, 3:] = PAD  # row 2 shorter still
        tokens = np.random.default_rng(9).integers(4, 47, size=(3, 9))
        state = model.start_decode(src_ids)
        prefix = np.full((3, 1), BOS, dtype=np.int64)
        active = np.arange(3)
        fed = np.full(3, BOS, dtype=np.int64)
        for step in range(9):
            incremental = model.decode_step(state, fed[active], rows=active)
            reference = _reference_last_logits(model, src_ids[active],
                                               prefix[active])
            assert np.array_equal(incremental, reference)
            fed = tokens[:, step]
            prefix = np.concatenate([prefix, fed[:, None]], axis=1)
            if step == 3:  # retire the middle row; survivors must not move
                active = np.array([0, 2])
            elif step == 6:
                active = np.array([2])

    @pytest.mark.parametrize("batch", [2, 5])
    def test_greedy_decode_matches_reference(self, batch):
        model = _tiny_transformer(max_len=20)
        src_ids = _sources(batch, 6, seed=batch + 20)
        incremental = model.greedy_decode(src_ids, bos_id=BOS, eos_id=EOS)
        reference = model.greedy_decode_reference(src_ids, bos_id=BOS,
                                                  eos_id=EOS)
        assert incremental == reference

    def test_linear_neuron_model_is_also_identical(self):
        model = _tiny_transformer(neuron_type="linear")
        src_ids = _sources(3, 5, seed=42)
        assert model.greedy_decode(src_ids, bos_id=BOS, eos_id=EOS) == \
            model.greedy_decode_reference(src_ids, bos_id=BOS, eos_id=EOS)


class TestCacheLifecycle:
    def test_cache_grows_across_capacity_boundary_and_stays_exact(self):
        """Cache doubling mid-decode does not perturb a single byte."""
        model = _tiny_transformer(max_len=16)
        src_ids = _sources(2, 5, seed=3)
        state = model.new_decode_state(2, src_capacity=5, initial_capacity=4)
        model.prefill(state, np.arange(2), src_ids)
        tokens = np.random.default_rng(5).integers(4, 47, size=(2, 15))
        prefix = np.full((2, 1), BOS, dtype=np.int64)
        fed = np.full(2, BOS, dtype=np.int64)
        for step in range(15):  # crosses capacity 4 → 8 → 16
            incremental = model.decode_step(state, fed)
            reference = _reference_last_logits(model, src_ids, prefix)
            assert np.array_equal(incremental, reference), \
                f"step {step} (capacity {state.capacity}) diverged"
            fed = tokens[:, step]
            prefix = np.concatenate([prefix, fed[:, None]], axis=1)
        assert state.grows >= 2
        assert state.capacity == 16
        assert int(state.lengths.max()) == 15

    def test_long_windows_agree_to_rounding_and_argmax(self):
        """Past window 15 the recompute rewrites its own history's bytes
        (BLAS K=16 reduction regrouping), so exact equality is impossible
        for any caching decoder — but agreement stays at the last bits and
        the argmax never moves."""
        model = _tiny_transformer(max_len=40)
        src_ids = _sources(2, 5, seed=3)
        state = model.start_decode(src_ids)
        tokens = np.random.default_rng(5).integers(4, 47, size=(2, 30))
        prefix = np.full((2, 1), BOS, dtype=np.int64)
        fed = np.full(2, BOS, dtype=np.int64)
        for step in range(30):
            incremental = model.decode_step(state, fed)
            reference = _reference_last_logits(model, src_ids, prefix)
            np.testing.assert_allclose(incremental, reference,
                                       rtol=0.0, atol=1e-12)
            assert np.array_equal(incremental.argmax(axis=-1),
                                  reference.argmax(axis=-1))
            fed = tokens[:, step]
            prefix = np.concatenate([prefix, fed[:, None]], axis=1)
        assert state.grows >= 1  # decoding 30 steps crossed capacity 16
        # Token-level greedy output is still exactly the reference's.
        assert model.greedy_decode(src_ids, bos_id=BOS, eos_id=EOS) == \
            model.greedy_decode_reference(src_ids, bos_id=BOS, eos_id=EOS)

    def test_step_past_max_len_is_rejected(self):
        model = _tiny_transformer(max_len=4)
        state = model.start_decode(_sources(1, 3, seed=0))
        fed = np.array([BOS])
        for _ in range(4):  # fills positions 0..3, the whole budget
            logits = model.decode_step(state, fed)
            fed = logits.argmax(axis=-1)
        with pytest.raises(ValueError, match="max_len"):
            model.decode_step(state, fed)

    def test_slot_reuse_after_reset_matches_fresh_state(self):
        """A recycled slot decodes exactly like a freshly allocated one."""
        model = _tiny_transformer()
        first = _sources(1, 6, seed=11)
        second = _sources(1, 4, seed=13)
        state = model.new_decode_state(2, src_capacity=8)
        slot = np.array([1])
        model.prefill(state, slot, first)
        fed = np.array([BOS])
        for _ in range(5):  # dirty the slot's caches
            fed = model.decode_step(state, fed, rows=slot).argmax(axis=-1)
        model.prefill(state, slot, second)  # recycle for a new sequence
        assert state.lengths[1] == 0
        fresh = model.start_decode(second)
        fed = np.array([BOS])
        for _ in range(5):
            reused = model.decode_step(state, fed, rows=slot)
            baseline = model.decode_step(fresh, fed)
            assert np.array_equal(reused, baseline)
            fed = reused.argmax(axis=-1)


class TestBleuIdentity:
    def test_evaluate_bleu_identical_across_decoders_at_smoke_scale(self):
        """BLEU through the incremental decoder is bit-identical to reference."""
        scale = get_scale("smoke")
        task = SyntheticTranslationTask(train_size=32, test_size=16,
                                        seed=scale.seed + 31)
        model = build_transformer(task, scale, neuron_type="proposed")
        model.eval()
        trainer = Seq2SeqTrainer(model, optimizer=None, loss_fn=None)
        incremental = trainer.evaluate_bleu(task, decoder="incremental")
        reference = trainer.evaluate_bleu(task, decoder="reference")
        assert incremental["hypotheses"] == reference["hypotheses"]
        for setting in incremental:
            if setting == "hypotheses":
                continue
            assert incremental[setting] == reference[setting], \
                f"BLEU diverged under {setting}"

    def test_unknown_decoder_is_rejected(self):
        scale = get_scale("smoke")
        task = SyntheticTranslationTask(train_size=8, test_size=4,
                                        seed=scale.seed + 31)
        model = build_transformer(task, scale)
        trainer = Seq2SeqTrainer(model, optimizer=None, loss_fn=None)
        with pytest.raises(ValueError, match="incremental"):
            trainer.evaluate_bleu(task, decoder="beam")


class TestStrategies:
    def test_token_logprobs_normalize(self):
        logits = np.random.default_rng(0).standard_normal((3, 11))
        logprobs = token_logprobs(logits)
        assert np.allclose(np.exp(logprobs).sum(axis=-1), 1.0)

    def test_greedy_selects_argmax(self):
        logits = np.array([0.1, 3.0, -1.0, 2.9])
        rng = np.random.default_rng(0)
        assert GreedyStrategy().select(logits, rng) == 1

    def test_top_k_one_sampling_equals_greedy(self):
        logits = np.random.default_rng(1).standard_normal(17)
        rng = np.random.default_rng(2)
        strategy = SamplingStrategy(top_k=1)
        assert strategy.select(logits, rng) == int(logits.argmax())

    def test_top_k_restricts_support(self):
        logits = np.arange(10, dtype=float)
        strategy = SamplingStrategy(top_k=3)
        rng = np.random.default_rng(3)
        draws = {strategy.select(logits, rng) for _ in range(50)}
        assert draws <= {7, 8, 9}

    def test_make_strategy_dispatch(self):
        assert isinstance(make_strategy(None), GreedyStrategy)
        assert isinstance(make_strategy("greedy"), GreedyStrategy)
        assert isinstance(make_strategy(temperature=0.5), SamplingStrategy)
        assert isinstance(make_strategy(top_k=4), SamplingStrategy)
        passthrough = GreedyStrategy()
        assert make_strategy(passthrough) is passthrough

    def test_make_strategy_rejects_contradictions(self):
        with pytest.raises(ValueError):
            make_strategy("greedy", temperature=0.5)
        with pytest.raises(ValueError):
            make_strategy("beam")
        with pytest.raises(ValueError):
            SamplingStrategy(temperature=0.0)
        with pytest.raises(ValueError):
            SamplingStrategy(top_k=0)
