"""Smoke-scale integration tests for every experiment driver (one per table/figure)."""

import numpy as np
import pytest

from repro.experiments import (
    SCALES,
    ablation,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    format_percentage,
    format_table,
    get_scale,
    relative_change,
    table1,
    table2,
)


SMOKE = get_scale("smoke")


class TestConfig:
    def test_presets_exist(self):
        assert {"smoke", "bench", "paper"} <= set(SCALES)

    def test_unknown_scale_raises(self):
        with pytest.raises(KeyError):
            get_scale("galactic")

    def test_with_overrides(self):
        scale = SMOKE.with_overrides(epochs=7)
        assert scale.epochs == 7
        assert SMOKE.epochs != 7 or True  # original is frozen / unchanged
        assert SMOKE is not scale

    def test_lr_milestones(self):
        scale = SMOKE.with_overrides(lr_milestone_fractions=(0.5, 0.75))
        assert scale.lr_milestones(epochs=100) == [50, 75]


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table([{"a": 1, "b": 0.5}, {"a": 22, "b": 0.25}])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "b" in lines[0]

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_relative_change_and_percentage(self):
        assert relative_change(70, 100) == pytest.approx(-0.3)
        assert relative_change(5, 0) == 0.0
        assert format_percentage(-0.293) == "-29.3%"


class TestTable1:
    def test_run_reproduces_table(self):
        result = table1.run()
        assert all(row["match"] for row in result["verification"])
        rows = result["tables"][(27, 9)]
        by_name = {row["neuron"]: row for row in rows}
        assert by_name["proposed"]["parameters"] == 279
        assert by_name["proposed"]["macs"] == 288
        assert "proposed" in result["report"]


@pytest.mark.slow
class TestFig4:
    def test_smoke_run(self):
        result = fig4.run(SMOKE)
        assert len(result["rows"]) == len(SMOKE.resnet_depths) * 2
        assert {"model", "test_accuracy", "parameters", "macs"} <= set(result["rows"][0])
        assert len(result["comparisons"]) == len(SMOKE.resnet_depths) - 1
        # The quadratic network at depth d must be cheaper than the linear
        # network at the next depth — this is the cost half of the Fig. 4 claim
        # and it is exact regardless of training noise.
        for comparison in result["comparisons"]:
            assert comparison["parameter_change"] < 0
            assert comparison["mac_change"] < 0

    def test_paper_scale_costs_single_depth(self):
        rows = fig4.paper_scale_costs(depths=(20,), rank=9, image_size=32, base_width=16)
        by_neuron = {row["neuron"]: row for row in rows}
        # ResNet-20 at CIFAR scale has ≈0.27 M parameters.  The quadratic variant
        # stays close to it: the per-output overhead is < 1 parameter (Eq. 9),
        # plus a ceiling effect because ceil(width / (k+1)) neurons are needed
        # when k+1 does not divide the layer width (16/32 channels, k = 9).
        assert by_neuron["linear"]["parameters_millions"] == pytest.approx(0.27, abs=0.03)
        assert by_neuron["proposed"]["parameters_millions"] < \
            1.15 * by_neuron["linear"]["parameters_millions"]


@pytest.mark.slow
class TestFig5:
    def test_smoke_run(self):
        result = fig5.run(SMOKE)
        neurons = {row["neuron"] for row in result["rows"]}
        assert neurons == {"quad1", "quad2", "proposed"}
        assert result["savings"], "expected per-depth savings entries"
        for saving in result["savings"]:
            # The proposed neuron must cost less than both prior quadratic neurons.
            assert saving["parameter_change"] < -0.2
            assert saving["mac_change"] < -0.2


@pytest.mark.slow
class TestFig6:
    def test_smoke_run(self):
        result = fig6.run(SMOKE)
        labels = {report["label"] for report in result["reports"]}
        assert "Ours" in labels
        assert any(label.startswith("KNN-") for label in labels)
        ours = next(report for report in result["reports"] if report["label"] == "Ours")
        assert not ours["diverged"]
        assert set(result["curves"]) == labels


@pytest.mark.slow
class TestFig7:
    def test_smoke_run(self):
        result = fig7.run(SMOKE, depth=8)
        assert result["summary"]["num_layers"] > 0
        kinds = {row["kind"] for row in result["stats"]}
        assert kinds == {"linear", "quadratic"}
        assert len(result["significance"]) == result["summary"]["num_layers"]


@pytest.mark.slow
class TestFig8:
    def test_smoke_run(self):
        result = fig8.run(SMOKE, num_images=2)
        assert len(result["rows"]) == 2
        summary = result["summary"]
        assert 0.0 <= summary["mean_linear_low_fraction"] <= 1.0
        assert 0.0 <= summary["mean_quadratic_low_fraction"] <= 1.0


@pytest.mark.slow
class TestTable2:
    def test_smoke_run(self):
        scale = SMOKE.with_overrides(translation_epochs=2, transformer_lambda_lrs=(1e-4,))
        result = table2.run(scale)
        assert len(result["rows"]) == 4
        assert result["parameters"]["parameter_change"] < 0
        for row in result["rows"]:
            assert 0.0 <= row["baseline"] <= 100.0
            assert 0.0 <= row["quadratic_1e-04"] <= 100.0

    def test_build_transformer_dim_scaling(self):
        from repro.data import SyntheticTranslationTask
        task = SyntheticTranslationTask(train_size=16, test_size=4, seed=0)
        baseline = table2.build_transformer(task, SMOKE, "linear")
        quadratic = table2.build_transformer(task, SMOKE, "proposed")
        assert quadratic.num_parameters() < baseline.num_parameters()
        assert quadratic.model_dim % SMOKE.transformer_heads == 0


@pytest.mark.slow
class TestAblation:
    def test_rank_sweep(self):
        result = ablation.run_rank_sweep(SMOKE, ranks=(1, 3))
        assert [row["rank"] for row in result["rows"]] == [1, 3]

    def test_vectorized_output_ablation(self):
        result = ablation.run_vectorized_output_ablation(SMOKE)
        comparison = result["comparison"]
        # Dropping the vectorized output forces one neuron per channel, which
        # must cost strictly more parameters and MACs (Sec. III-C).
        assert comparison["parameter_ratio"] > 1.5
        assert comparison["mac_ratio"] > 1.5
