"""Continuous-batching GenerationEngine: storms, backpressure, drain, stats."""

import threading
import time

import numpy as np
import pytest

from repro.models import Transformer
from repro.serve import EngineClosed, QueueFull
from repro.serve.generate import GenerationEngine

BOS, EOS = 1, 2


def _tiny_transformer(max_len: int = 16, seed: int = 0) -> Transformer:
    model = Transformer(src_vocab_size=53, tgt_vocab_size=47, model_dim=16,
                        num_heads=4, num_layers=2, hidden_dim=32,
                        neuron_type="proposed", rank=2, max_len=max_len,
                        seed=seed)
    model.eval()
    return model


def _source(length: int, seed: int) -> np.ndarray:
    return np.random.default_rng(seed).integers(4, 53, size=length)


class TestSubmitValidation:
    def test_rejects_bad_sources_and_budgets(self):
        model = _tiny_transformer()
        with GenerationEngine(model, bos_id=BOS, eos_id=EOS, max_batch=2) as engine:
            with pytest.raises(ValueError, match="1-D"):
                engine.submit(np.zeros((2, 3), dtype=np.int64))
            with pytest.raises(ValueError, match="1-D"):
                engine.submit([])
            with pytest.raises(ValueError, match="capacity"):
                engine.submit(_source(17, 0))  # longer than max_len 16
            with pytest.raises(ValueError, match="max_new_tokens"):
                engine.submit(_source(4, 0), max_new_tokens=0)

    def test_constructor_validation(self):
        model = _tiny_transformer()
        with pytest.raises(ValueError, match="max_batch"):
            GenerationEngine(model, bos_id=BOS, eos_id=EOS, max_batch=0)
        with pytest.raises(ValueError, match="queue_size"):
            GenerationEngine(model, bos_id=BOS, eos_id=EOS, queue_size=0)


class TestContinuousBatchingStorm:
    def test_storm_matches_sequential_greedy_decode(self):
        """N staggered clients with mixed budgets get exactly the tokens a
        sequential greedy_decode of their own source would produce."""
        model = _tiny_transformer()
        sources = [_source(length, seed)
                   for seed, length in enumerate([5, 7, 3, 6, 4, 8, 5, 6,
                                                  7, 4, 3, 5])]
        budgets = [15, 3, 7, 1, 15, 5, 2, 9, 15, 4, 6, 8]
        expected = [model.greedy_decode(source[None, :], bos_id=BOS,
                                        eos_id=EOS)[0][:budget]
                    for source, budget in zip(sources, budgets)]

        engine = GenerationEngine(model, bos_id=BOS, eos_id=EOS, max_batch=4,
                                  max_wait_ms=1.0)
        futures: list = [None] * len(sources)

        def client(index: int) -> None:
            time.sleep(0.002 * (index % 5))  # staggered arrivals
            futures[index] = engine.submit(sources[index],
                                           max_new_tokens=budgets[index])

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(len(sources))]
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            results = [future.result(timeout=30) for future in futures]
        finally:
            engine.close()

        for index, (result, want) in enumerate(zip(results, expected)):
            assert result["tokens"] == want, f"request {index} diverged"
            assert len(result["logprobs"]) == len(result["tokens"])
            assert all(lp <= 0.0 for lp in result["logprobs"])
            assert result["finish_reason"] in ("eos", "length", "max_len")
            assert result["steps"] == len(result["tokens"])

        stats = engine.stats()
        assert stats["requests"] == len(sources)
        assert stats["generation"]["completed"] == len(sources)
        # Continuous batching actually shared forwards across sequences.
        assert stats["mean_batch_rows"] > 1.0

    def test_outputs_independent_of_co_arriving_traffic(self):
        """A request's tokens do not depend on what else is in flight."""
        model = _tiny_transformer()
        probe = _source(6, 99)
        with GenerationEngine(model, bos_id=BOS, eos_id=EOS,
                              max_batch=4) as engine:
            alone = engine.submit(probe).result(timeout=30)
            noise = [engine.submit(_source(5, seed), max_new_tokens=10)
                     for seed in range(6)]
            crowded = engine.submit(probe).result(timeout=30)
            for future in noise:
                future.result(timeout=30)
        assert alone["tokens"] == crowded["tokens"]
        assert alone["logprobs"] == crowded["logprobs"]


class TestSamplingDeterminism:
    def test_pinned_seed_reproduces_across_submissions(self):
        model = _tiny_transformer()
        source = _source(6, 1)
        with GenerationEngine(model, bos_id=BOS, eos_id=EOS,
                              max_batch=3) as engine:
            first = engine.submit(source, strategy="sample", temperature=0.8,
                                  top_k=5, seed=123).result(timeout=30)
            # crowd the pool so scheduling differs the second time around
            noise = [engine.submit(_source(4, s), max_new_tokens=6)
                     for s in range(3)]
            second = engine.submit(source, strategy="sample", temperature=0.8,
                                   top_k=5, seed=123).result(timeout=30)
            for future in noise:
                future.result(timeout=30)
        assert first["tokens"] == second["tokens"]
        assert first["logprobs"] == second["logprobs"]

    def test_unpinned_requests_draw_distinct_streams(self):
        model = _tiny_transformer()
        source = _source(6, 1)
        with GenerationEngine(model, bos_id=BOS, eos_id=EOS,
                              max_batch=2) as engine:
            results = [engine.submit(source, strategy="sample",
                                     temperature=2.0).result(timeout=30)
                       for _ in range(2)]
        # With temperature 2.0 over 47 tokens, identical 15-step streams
        # from independent seeds are (astronomically) unlikely.
        assert results[0]["tokens"] != results[1]["tokens"]


class TestBackpressureAndDrain:
    def test_queue_full_raises_and_close_fails_queued_futures(self):
        model = _tiny_transformer()
        engine = GenerationEngine(model, bos_id=BOS, eos_id=EOS, max_batch=1,
                                  queue_size=2, autostart=False)
        queued = [engine.submit(_source(4, seed)) for seed in range(2)]
        with pytest.raises(QueueFull, match="retry with backoff"):
            engine.submit(_source(4, 9))
        engine.close()
        for future in queued:
            with pytest.raises(EngineClosed):
                future.result(timeout=5)

    def test_close_drains_active_and_queued_work(self):
        """Everything submitted before close() resolves — no stranded futures."""
        model = _tiny_transformer()
        engine = GenerationEngine(model, bos_id=BOS, eos_id=EOS, max_batch=1,
                                  queue_size=16)
        futures = [engine.submit(_source(5, seed), max_new_tokens=10)
                   for seed in range(5)]
        engine.close()
        for future in futures:
            assert future.done()
            try:
                result = future.result(timeout=0)
            except EngineClosed:
                continue  # failed fast rather than hanging: acceptable drain
            assert result["finish_reason"] in ("eos", "length", "max_len")

    def test_submit_after_close_is_rejected(self):
        model = _tiny_transformer()
        engine = GenerationEngine(model, bos_id=BOS, eos_id=EOS)
        engine.close()
        with pytest.raises(EngineClosed, match="closed"):
            engine.submit(_source(4, 0))

    def test_close_is_idempotent(self):
        engine = GenerationEngine(_tiny_transformer(), bos_id=BOS, eos_id=EOS)
        engine.close()
        engine.close()


class TestStatsSchema:
    def test_flat_schema_mirrors_queued_engine(self):
        model = _tiny_transformer()
        with GenerationEngine(model, bos_id=BOS, eos_id=EOS, max_batch=2,
                              queue_size=7, max_wait_ms=1.5) as engine:
            engine.submit(_source(5, 0), max_new_tokens=4).result(timeout=30)
            stats = engine.stats()
        assert set(stats) == {"engine", "requests", "samples", "batches",
                              "mean_batch_rows", "queue_depth", "queue_size",
                              "max_batch", "max_wait_ms", "closed",
                              "generation"}
        assert stats["engine"] == "generation"
        assert stats["requests"] == 1
        assert stats["samples"] == stats["generation"]["tokens_generated"]
        assert stats["queue_size"] == 7
        assert stats["max_batch"] == 2
        assert stats["max_wait_ms"] == 1.5

    def test_generation_section_schema_and_occupancy(self):
        model = _tiny_transformer()
        with GenerationEngine(model, bos_id=BOS, eos_id=EOS,
                              max_batch=2) as engine:
            engine.submit(_source(5, 0), max_new_tokens=3).result(timeout=30)
            section = engine.stats()["generation"]
        assert set(section) == {"tokens_generated", "completed",
                                "active_sequences", "mean_batch_occupancy",
                                "slots", "cache"}
        assert section["completed"] == 1
        assert section["active_sequences"] == 0
        assert 0.0 < section["mean_batch_occupancy"] <= 1.0
        assert section["slots"] == 2
        assert section["cache"]["slots"] == 2
