"""Experiment registry, caching runner and CLI."""

import json
import pkgutil

import pytest

import repro.experiments as experiments_package
from repro import cli
from repro.experiments import get_scale
from repro.experiments.registry import (
    all_specs,
    experiment_names,
    get_spec,
    register,
    unregister,
)
from repro.experiments.runner import config_hash, run_experiment, run_many

PAPER_ARTIFACTS = {"fig4", "fig5", "fig6", "fig7", "fig8", "table1", "table2", "ablation"}

#: Experiment-package modules that are infrastructure, not paper artifacts.
_NON_DRIVER_MODULES = {"common", "config", "registry", "reporting", "runner"}


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        assert PAPER_ARTIFACTS <= set(experiment_names())

    def test_every_driver_module_is_registered(self):
        driver_modules = {
            module.name for module in pkgutil.iter_modules(experiments_package.__path__)
        } - _NON_DRIVER_MODULES
        assert driver_modules == set(experiment_names()), \
            "every experiments module must register an ExperimentSpec (or be " \
            "listed in _NON_DRIVER_MODULES)"

    def test_specs_have_runner_and_title(self):
        for spec in all_specs():
            assert callable(spec.runner)
            assert spec.title
            assert spec.artifact

    def test_unknown_experiment_lists_available(self):
        with pytest.raises(KeyError, match="fig4"):
            get_spec("fig99")

    def test_conflicting_registration_rejected(self):
        register(name="_dupe", artifact="Test", title="t", runner=lambda scale: {})
        try:
            with pytest.raises(ValueError, match="already registered"):
                register(name="_dupe", artifact="Other", title="different",
                         runner=lambda scale: {})
        finally:
            unregister("_dupe")

    def test_identical_reregistration_is_idempotent(self):
        # Running a driver as a script re-executes its module under __main__,
        # hitting the module-bottom register() a second time.
        def runner(scale):
            return {}

        first = register(name="_idem", artifact="Test", title="t", runner=runner)
        try:
            second = register(name="_idem", artifact="Test", title="t", runner=runner)
            assert second is first
        finally:
            unregister("_idem")

    def test_driver_runs_as_script(self):
        import os
        import subprocess
        import sys

        import repro
        src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ, PYTHONPATH=src)
        completed = subprocess.run(
            [sys.executable, "-m", "repro.experiments.table1"],
            capture_output=True, text=True, timeout=120, env=env)
        assert completed.returncode == 0, completed.stderr
        assert "Table I" in completed.stdout


class _CountingRunner:
    def __init__(self):
        self.calls = 0

    def __call__(self, scale):
        self.calls += 1
        return {"rows": [{"value": 1}], "report": "counting report",
                "scale": scale.name}


@pytest.fixture
def counting_spec():
    runner = _CountingRunner()
    spec = register(name="_probe", artifact="Test", title="cache probe", runner=runner)
    yield spec, runner
    unregister("_probe")


class TestRunnerCache:
    def test_cache_hit_skips_execution(self, tmp_path, counting_spec):
        _, runner = counting_spec
        first = run_experiment("_probe", scale="smoke", cache_dir=tmp_path)
        assert not first.cache_hit and runner.calls == 1
        assert first.path.exists()
        second = run_experiment("_probe", scale="smoke", cache_dir=tmp_path)
        assert second.cache_hit and runner.calls == 1
        assert second.result == first.result

    def test_force_recomputes(self, tmp_path, counting_spec):
        _, runner = counting_spec
        run_experiment("_probe", scale="smoke", cache_dir=tmp_path)
        forced = run_experiment("_probe", scale="smoke", cache_dir=tmp_path, force=True)
        assert not forced.cache_hit and runner.calls == 2

    def test_config_change_invalidates(self, tmp_path, counting_spec):
        spec, runner = counting_spec
        smoke = get_scale("smoke")
        run_experiment("_probe", scale=smoke, cache_dir=tmp_path)
        changed = smoke.with_overrides(epochs=smoke.epochs + 1)
        assert config_hash(spec, smoke) != config_hash(spec, changed)
        outcome = run_experiment("_probe", scale=changed, cache_dir=tmp_path)
        assert not outcome.cache_hit and runner.calls == 2
        # Returning to the original config is still a hit — both artifacts coexist.
        back = run_experiment("_probe", scale=smoke, cache_dir=tmp_path)
        assert back.cache_hit and runner.calls == 2

    def test_spec_version_participates_in_hash(self, counting_spec):
        spec, _ = counting_spec
        bumped = type(spec)(name=spec.name, artifact=spec.artifact, title=spec.title,
                            runner=spec.runner, version=spec.version + 1)
        assert config_hash(spec, get_scale("smoke")) != \
            config_hash(bumped, get_scale("smoke"))

    def test_artifact_json_structure(self, tmp_path, counting_spec):
        outcome = run_experiment("_probe", scale="smoke", cache_dir=tmp_path)
        artifact = json.loads(outcome.path.read_text())
        assert artifact["meta"]["experiment"] == "_probe"
        assert artifact["meta"]["scale"] == "smoke"
        assert artifact["meta"]["config_hash"] == outcome.config_hash
        assert artifact["result"]["rows"] == [{"value": 1}]

    def test_stale_format_version_recomputed(self, tmp_path, counting_spec):
        _, runner = counting_spec
        first = run_experiment("_probe", scale="smoke", cache_dir=tmp_path)
        artifact = json.loads(first.path.read_text())
        artifact["meta"]["format_version"] = -1
        first.path.write_text(json.dumps(artifact))
        refreshed = run_experiment("_probe", scale="smoke", cache_dir=tmp_path)
        assert not refreshed.cache_hit and runner.calls == 2

    def test_corrupt_artifact_recomputed(self, tmp_path, counting_spec):
        _, runner = counting_spec
        first = run_experiment("_probe", scale="smoke", cache_dir=tmp_path)
        first.path.write_text("{ truncated")
        refreshed = run_experiment("_probe", scale="smoke", cache_dir=tmp_path)
        assert not refreshed.cache_hit and runner.calls == 2

    def test_scale_independent_experiment_cached_across_scales(self, tmp_path):
        calls = []
        runner = lambda: calls.append(1) or {"rows": []}  # noqa: E731
        register(name="_noscale", artifact="Test", title="scale-free probe",
                 runner=runner, uses_scale=False)
        try:
            first = run_experiment("_noscale", scale="smoke", cache_dir=tmp_path)
            second = run_experiment("_noscale", scale="bench", cache_dir=tmp_path)
            assert not first.cache_hit and second.cache_hit
            assert first.path == second.path
            assert len(calls) == 1
        finally:
            unregister("_noscale")

    def test_run_many_reports_progress(self, tmp_path, counting_spec):
        seen = []
        outcomes = run_many(["_probe", "_probe"], scale="smoke", cache_dir=tmp_path,
                            progress=lambda outcome: seen.append(outcome.cache_hit))
        assert [outcome.cache_hit for outcome in outcomes] == [False, True]
        assert seen == [False, True]


class TestCLI:
    def test_list_shows_all_experiments(self, capsys, tmp_path):
        assert cli.main(["list", "--cache-dir", str(tmp_path)]) == 0
        output = capsys.readouterr().out
        for name in PAPER_ARTIFACTS:
            assert name in output

    def test_run_uses_cache_on_second_invocation(self, capsys, tmp_path, counting_spec):
        _, runner = counting_spec
        assert cli.main(["run", "_probe", "--scale", "smoke",
                         "--cache-dir", str(tmp_path)]) == 0
        first_output = capsys.readouterr().out
        assert "counting report" in first_output
        assert cli.main(["run", "_probe", "--scale", "smoke",
                         "--cache-dir", str(tmp_path)]) == 0
        second_output = capsys.readouterr().out
        assert "cached" in second_output
        assert runner.calls == 1

    def test_run_force_recomputes(self, capsys, tmp_path, counting_spec):
        _, runner = counting_spec
        cli.main(["run", "_probe", "--scale", "smoke", "--cache-dir", str(tmp_path)])
        cli.main(["run", "_probe", "--scale", "smoke", "--cache-dir", str(tmp_path),
                  "--force"])
        assert runner.calls == 2

    def test_run_table1_real_experiment(self, capsys, tmp_path):
        assert cli.main(["run", "table1", "--cache-dir", str(tmp_path)]) == 0
        output = capsys.readouterr().out
        assert "proposed" in output
        assert list(tmp_path.glob("table1-*.json"))

    def test_run_unknown_experiment_fails_cleanly(self, capsys, tmp_path):
        assert cli.main(["run", "fig99", "--cache-dir", str(tmp_path)]) == 1
        assert "unknown experiment" in capsys.readouterr().err

    def test_bench_times_experiments(self, capsys, tmp_path, counting_spec):
        json_path = tmp_path / "bench.json"
        assert cli.main(["bench", "_probe", "--scale", "smoke",
                         "--cache-dir", str(tmp_path), "--skip-fused",
                         "--skip-inference", "--output", str(json_path)]) == 0
        summary = json.loads(json_path.read_text())
        assert summary["scale"] == "smoke"
        assert summary["figure_repros"]["_probe"]["rounds"] == 1
        assert summary["figure_repros"]["_probe"]["mean_seconds"] >= 0.0

    def test_bench_warms_the_cache(self, capsys, tmp_path, counting_spec):
        _, runner = counting_spec
        assert cli.main(["bench", "_probe", "--scale", "smoke", "--skip-fused",
                         "--skip-inference", "--cache-dir", str(tmp_path),
                         "--output", ""]) == 0
        assert runner.calls == 1
        # The forced bench run wrote through the cache: a subsequent run hits.
        assert cli.main(["run", "_probe", "--scale", "smoke",
                         "--cache-dir", str(tmp_path)]) == 0
        assert runner.calls == 1
        assert "cached" in capsys.readouterr().out

    def test_bench_fused_gate(self, capsys, tmp_path, counting_spec):
        common = ["bench", "_probe", "--scale", "smoke", "--cache-dir", str(tmp_path),
                  "--output", "", "--rounds", "3", "--skip-inference"]
        assert cli.main(common + ["--min-fused-speedup", "1e9"]) == 1
        assert "PERF REGRESSION" in capsys.readouterr().err
        assert cli.main(common + ["--min-fused-speedup", "0.0"]) == 0

    def test_bench_inference_micro_recorded(self, capsys, tmp_path, counting_spec):
        json_path = tmp_path / "bench.json"
        assert cli.main(["bench", "_probe", "--scale", "smoke", "--skip-fused",
                         "--cache-dir", str(tmp_path), "--rounds", "3",
                         "--output", str(json_path)]) == 0
        summary = json.loads(json_path.read_text())
        inference = summary["inference"]
        assert inference["batch_size"] == 64
        assert inference["batched"]["mean_seconds"] > 0
        assert inference["per_sample"]["mean_seconds"] > 0
        assert inference["speedup"] > 0
        assert "inference batch speedup" in capsys.readouterr().out

    def test_bench_inference_gate(self, capsys, tmp_path, counting_spec):
        common = ["bench", "_probe", "--scale", "smoke", "--cache-dir",
                  str(tmp_path), "--output", "", "--rounds", "3", "--skip-fused"]
        assert cli.main(common + ["--min-inference-speedup", "1e9"]) == 1
        assert "PERF REGRESSION" in capsys.readouterr().err
        assert cli.main(common + ["--min-inference-speedup", "0.0"]) == 0

    def test_run_jobs_flag_summary_and_exit(self, capsys, tmp_path, counting_spec):
        assert cli.main(["run", "_probe", "--scale", "smoke", "--jobs", "1",
                         "--cache-dir", str(tmp_path)]) == 0
        output = capsys.readouterr().out
        assert "1 ran" in output and "0 cached" in output and "0 failed" in output

    def test_run_all_flag_resolves_every_experiment(self):
        from repro.experiments.registry import experiment_names

        assert cli._resolve_names([], run_all=True) == experiment_names()
        assert cli._resolve_names(["all"]) == experiment_names()
        assert set(PAPER_ARTIFACTS) <= set(cli._resolve_names([], run_all=True))

    def test_sweep_command(self, capsys, tmp_path, counting_spec):
        assert cli.main(["sweep", "_probe", "--scales", "smoke",
                         "--jobs", "1", "--cache-dir", str(tmp_path)]) == 0
        output = capsys.readouterr().out
        assert "sweep @ smoke" in output
        assert "1 ran" in output
        # Second sweep over the same configuration is all cache hits.
        assert cli.main(["sweep", "_probe", "--scales", "smoke",
                         "--jobs", "1", "--cache-dir", str(tmp_path)]) == 0
        assert "1 cached" in capsys.readouterr().out

    def test_bad_scale_fails_cleanly(self, capsys, tmp_path):
        assert cli.main(["run", "table1", "--scale", "galactic",
                         "--cache-dir", str(tmp_path)]) == 1
        assert "galactic" in capsys.readouterr().err
