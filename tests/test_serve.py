"""Serving stack: inference sessions, the pipeline, the HTTP server, CLI verbs."""

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

import repro
from repro import cli
from repro.io import save_bundle
from repro.models import SimpleCNN
from repro.serve import InferenceSession, Pipeline, Predictor, make_server, softmax, top_k
from repro.tensor import Tensor, graph_nodes_created


def _tiny_model(seed: int = 3) -> SimpleCNN:
    return SimpleCNN(num_classes=4, neuron_type="proposed", rank=2, base_width=4,
                     image_size=8, seed=seed)


def _inputs(count: int, seed: int = 0) -> np.ndarray:
    return np.random.default_rng(seed).standard_normal((count, 3, 8, 8)) \
        .astype(np.float32)


@pytest.fixture
def bundle_path(tmp_path):
    return save_bundle(tmp_path / "model.npz", _tiny_model(),
                       info={"normalization": {"mean": 0.25, "std": 2.0},
                             "classes": ["cat", "dog", "ship", "truck"],
                             "input_shape": [3, 8, 8]})


class TestInferenceSession:
    def test_matches_direct_eval_forward(self):
        model = _tiny_model()
        x = _inputs(5)
        expected = model.eval()(Tensor(x)).data
        session = InferenceSession(model, max_batch=16)
        np.testing.assert_array_equal(session.predict(x), expected)

    def test_micro_batching_covers_all_samples(self):
        model = _tiny_model()
        x = _inputs(7)
        full = InferenceSession(model, max_batch=64).predict(x)
        chunked = InferenceSession(model, max_batch=3).predict(x)
        assert chunked.shape == full.shape == (7, 4)
        # Chunk boundaries may shift BLAS blocking; results agree to float
        # tolerance and classifications agree exactly.
        np.testing.assert_allclose(chunked, full, atol=1e-5)
        np.testing.assert_array_equal(chunked.argmax(-1), full.argmax(-1))

    def test_zero_graph_construction(self):
        session = InferenceSession(_tiny_model(), max_batch=4)
        x = _inputs(6)
        session.predict(x)  # first call may warm caches
        before = graph_nodes_created()
        session.predict(x)
        assert graph_nodes_created() == before

    def test_strict_mode_catches_graph_building_models(self):
        import repro.tensor.engine as engine

        class Sneaky(SimpleCNN):
            """Re-enables gradients inside forward, as a buggy model might."""

            def forward(self, x):
                engine._state.grad_enabled = True
                return super().forward(x)

        model = Sneaky(num_classes=4, neuron_type="linear", base_width=4,
                       image_size=8, seed=0)
        session = InferenceSession(model, max_batch=4)
        try:
            with pytest.raises(RuntimeError, match="graph"):
                session.predict(_inputs(2))
        finally:
            engine._state.grad_enabled = True  # restore for the rest of the suite

    def test_loads_bundle_path_directly(self, bundle_path):
        session = InferenceSession(bundle_path)
        assert session.bundle is not None
        assert session.predict(_inputs(2)).shape == (2, 4)

    def test_warm_populates_caches_and_reports(self, bundle_path):
        session = InferenceSession(bundle_path, max_batch=8)
        assert session.warm() is True
        assert InferenceSession(_tiny_model()).warm() is False  # no shape known

    def test_batched_input_required(self):
        session = InferenceSession(_tiny_model())
        with pytest.raises(ValueError, match="batched"):
            session.predict(np.zeros(8, dtype=np.float32))

    def test_serving_stats_accumulate(self):
        session = InferenceSession(_tiny_model(), max_batch=2)
        session.predict(_inputs(5))
        assert session.samples_served == 5
        assert session.batches_served == 3  # ceil(5 / 2)


class TestPipeline:
    def test_softmax_rows_sum_to_one(self):
        logits = np.array([[1.0, 2.0, 3.0], [1000.0, 1000.0, -1000.0]])
        probabilities = softmax(logits)
        np.testing.assert_allclose(probabilities.sum(-1), [1.0, 1.0])
        assert np.isfinite(probabilities).all()

    def test_top_k_sorted_and_deterministic_on_ties(self):
        indices, values = top_k(np.array([[0.2, 0.5, 0.2, 0.1]]), 3)
        assert indices[0].tolist() == [1, 0, 2]  # tie 0.2/0.2 → ascending index
        np.testing.assert_allclose(values[0], [0.5, 0.2, 0.2])

    def test_top_k_clamped_to_num_classes(self):
        indices, _ = top_k(np.array([[0.6, 0.4]]), 99)
        assert indices.shape == (1, 2)

    def test_normalization_applied_from_bundle(self, bundle_path):
        bundle = repro.load_bundle(bundle_path)
        predictor = Predictor.from_bundle(bundle)
        raw = _inputs(3)
        normalized = (raw - np.float32(0.25)) / np.float32(2.0)
        np.testing.assert_array_equal(
            predictor.predict_logits(raw),
            predictor.predict_logits(normalized, normalize=False))

    def test_single_sample_promoted_to_batch(self, bundle_path):
        predictor = repro.load(bundle_path, warm=False)
        records = predictor.predict_topk(_inputs(1)[0], k=2)
        assert len(records) == 1
        assert records[0]["label"] in ("cat", "dog", "ship", "truck")
        assert len(records[0]["top_k"]) == 2

    def test_wrong_shape_rejected(self, bundle_path):
        predictor = repro.load(bundle_path, warm=False)
        with pytest.raises(ValueError, match="does not match"):
            predictor.predict(np.zeros((2, 3, 5, 5), dtype=np.float32))

    def test_pipeline_without_metadata_passes_through(self):
        session = InferenceSession(_tiny_model())
        pipeline = Pipeline(session)
        records = pipeline.predict(_inputs(2), k=1)
        assert [r["label"].startswith("class_") for r in records] == [True, True]


class TestTopLevelAPI:
    def test_repro_load_predict(self, bundle_path):
        predictor = repro.load(bundle_path)
        classes = predictor.predict(_inputs(4))
        assert classes.shape == (4,)
        assert set(classes) <= {0, 1, 2, 3}
        probabilities = predictor.predict_proba(_inputs(4))
        np.testing.assert_allclose(probabilities.sum(-1), np.ones(4))

    def test_describe_reports_model_and_shape(self, bundle_path):
        info = repro.load(bundle_path, warm=False).describe()
        assert info["model"] == "simple_cnn"
        assert info["input_shape"] == [3, 8, 8]
        assert info["num_classes"] == 4
        assert info["parameters"] > 0


@pytest.fixture
def http_server(bundle_path):
    predictor = repro.load(bundle_path, warm=False)
    server = make_server(predictor, port=0, quiet=True)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}", predictor
    server.shutdown()
    server.server_close()


def _post_json(url: str, payload: dict) -> dict:
    body = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(url, data=body,
                                     headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.load(response)


class TestHTTP:
    def test_healthz(self, http_server):
        base, _ = http_server
        with urllib.request.urlopen(f"{base}/healthz", timeout=30) as response:
            payload = json.load(response)
        assert payload["status"] == "ok"
        assert payload["model"] == "simple_cnn"
        assert payload["input_shape"] == [3, 8, 8]

    def test_predict_matches_in_process_answer(self, http_server):
        base, predictor = http_server
        inputs = _inputs(3)
        response = _post_json(f"{base}/predict",
                              {"inputs": inputs.tolist(), "top_k": 2})
        assert response["count"] == 3
        http_classes = [record["class_index"] for record in response["predictions"]]
        assert http_classes == predictor.predict(inputs).tolist()
        assert all(len(record["top_k"]) == 2 for record in response["predictions"])

    def test_concurrent_requests_share_one_session_safely(self, http_server):
        base, predictor = http_server
        inputs = _inputs(2)
        expected = predictor.predict(inputs).tolist()
        results, errors = [], []

        def hit():
            try:
                response = _post_json(f"{base}/predict", {"inputs": inputs.tolist()})
                results.append([r["class_index"] for r in response["predictions"]])
            except Exception as error:  # noqa: BLE001 — collected for assertion
                errors.append(error)

        threads = [threading.Thread(target=hit) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert results == [expected] * 8

    @pytest.mark.parametrize("body,fragment", [
        (b"{not json", "Expecting"),
        (b"{}", "inputs"),
        (b"[1, 2, 3]", "inputs"),
    ])
    def test_malformed_requests_get_400(self, http_server, body, fragment):
        base, _ = http_server
        request = urllib.request.Request(f"{base}/predict", data=body)
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400
        assert fragment in json.load(excinfo.value)["error"]

    def test_wrong_shape_gets_400(self, http_server):
        base, _ = http_server
        request = urllib.request.Request(
            f"{base}/predict",
            data=json.dumps({"inputs": [[1.0, 2.0]]}).encode())
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400
        assert "does not match" in json.load(excinfo.value)["error"]

    def test_unknown_path_gets_404(self, http_server):
        base, _ = http_server
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{base}/nope", timeout=30)
        assert excinfo.value.code == 404

    def test_keep_alive_connection_survives_error_responses(self, http_server):
        """Error paths must drain the request body, or the unread bytes
        poison the next request on the same keep-alive connection."""
        import http.client

        base, predictor = http_server
        host, port = base.removeprefix("http://").split(":")
        connection = http.client.HTTPConnection(host, int(port), timeout=30)
        try:
            # 404 with a body left behind would corrupt the next request.
            connection.request("POST", "/nope", body=b'{"inputs": [1, 2, 3]}')
            response = connection.getresponse()
            assert response.status == 404 and response.read()
            connection.request("GET", "/healthz")
            response = connection.getresponse()
            assert response.status == 200
            assert json.loads(response.read())["status"] == "ok"
            # A 400 (bad JSON) must equally leave the connection clean.
            connection.request("POST", "/predict", body=b"{broken")
            response = connection.getresponse()
            assert response.status == 400 and response.read()
            inputs = _inputs(1)
            connection.request("POST", "/predict",
                               body=json.dumps({"inputs": inputs.tolist()}).encode())
            response = connection.getresponse()
            assert response.status == 200
            payload = json.loads(response.read())
            assert payload["predictions"][0]["class_index"] == \
                predictor.predict(inputs).tolist()[0]
        finally:
            connection.close()


class TestCLI:
    def test_predict_with_random_inputs(self, capsys, bundle_path, tmp_path):
        output = tmp_path / "predictions.json"
        assert cli.main(["predict", str(bundle_path), "--random", "3",
                         "--top-k", "2", "--output", str(output)]) == 0
        document = json.loads(output.read_text())
        assert document["count"] == 3
        assert document["model"] == "simple_cnn"
        assert len(document["predictions"][0]["top_k"]) == 2
        assert json.loads(capsys.readouterr().out) == document

    def test_predict_from_npy_matches_api(self, capsys, bundle_path, tmp_path):
        inputs = _inputs(2, seed=9)
        npy = tmp_path / "inputs.npy"
        np.save(npy, inputs)
        assert cli.main(["predict", str(bundle_path), "--input", str(npy)]) == 0
        document = json.loads(capsys.readouterr().out)
        expected = repro.load(bundle_path, warm=False).predict(inputs).tolist()
        assert [p["class_index"] for p in document["predictions"]] == expected

    def test_predict_seeded_random_is_reproducible(self, capsys, bundle_path):
        assert cli.main(["predict", str(bundle_path), "--random", "2",
                         "--seed", "4"]) == 0
        first = capsys.readouterr().out
        assert cli.main(["predict", str(bundle_path), "--random", "2",
                         "--seed", "4"]) == 0
        assert capsys.readouterr().out == first

    def test_predict_missing_bundle_fails_cleanly(self, capsys, tmp_path):
        assert cli.main(["predict", str(tmp_path / "missing.npz"),
                         "--random", "1"]) == 1
        assert "error" in capsys.readouterr().err

    def test_bench_inference_gate(self, capsys, tmp_path):
        # The gates are mutually exclusive with their skip flags.
        assert cli.main(["bench", "table1", "--cache-dir", str(tmp_path),
                        "--output", "", "--skip-inference",
                         "--min-inference-speedup", "3.0"]) == 2
        assert "vacuous" in capsys.readouterr().err
