"""Tests for the Transformer components and the quadratic-projection variant."""

import numpy as np
import pytest

from repro import nn
from repro.models import (
    MultiHeadAttention,
    Transformer,
    make_causal_mask,
    make_padding_mask,
    sinusoidal_positions,
)
from repro.quadratic import EfficientQuadraticLinear
from repro.tensor import Tensor


RNG = np.random.default_rng(0)


class TestPositionalEncoding:
    def test_shape_and_range(self):
        table = sinusoidal_positions(20, 16)
        assert table.shape == (20, 16)
        assert np.all(np.abs(table) <= 1.0 + 1e-6)

    def test_first_position_pattern(self):
        table = sinusoidal_positions(4, 8)
        np.testing.assert_allclose(table[0, 0::2], 0.0, atol=1e-7)
        np.testing.assert_allclose(table[0, 1::2], 1.0, atol=1e-7)

    def test_positions_distinct(self):
        table = sinusoidal_positions(50, 32)
        assert np.linalg.matrix_rank(table) > 10


class TestMasks:
    def test_padding_mask_marks_pad_positions(self):
        ids = np.array([[5, 6, 0, 0]])
        mask = make_padding_mask(ids, pad_id=0)
        assert mask.shape == (1, 1, 1, 4)
        assert mask[0, 0, 0, 0] == 0.0
        assert mask[0, 0, 0, 2] < -1e8

    def test_causal_mask_upper_triangular(self):
        mask = make_causal_mask(4)[0, 0]
        assert mask[0, 1] < -1e8
        assert mask[2, 1] == 0.0
        assert np.all(np.diag(mask) == 0.0)


class TestMultiHeadAttention:
    def test_output_shape(self):
        attention = MultiHeadAttention(16, 4, rng=np.random.default_rng(1))
        x = Tensor(RNG.standard_normal((2, 5, 16)).astype(np.float32))
        assert attention(x, x, x).shape == (2, 5, 16)

    def test_invalid_head_count(self):
        with pytest.raises(ValueError):
            MultiHeadAttention(16, 3)

    def test_masked_positions_do_not_influence_output(self):
        attention = MultiHeadAttention(8, 2, rng=np.random.default_rng(2))
        attention.eval()
        base = RNG.standard_normal((1, 4, 8)).astype(np.float32)
        altered = base.copy()
        altered[0, 3] += 100.0           # only the masked position changes
        mask = np.zeros((1, 1, 1, 4), dtype=np.float32)
        mask[..., 3] = -1e9
        out_base = attention(Tensor(base), Tensor(base), Tensor(base), mask).data
        out_altered = attention(Tensor(altered[:, :3]), Tensor(altered), Tensor(altered),
                                mask).data
        np.testing.assert_allclose(out_base[:, :3], out_altered, atol=1e-4)

    def test_quadratic_projections_used_when_requested(self):
        attention = MultiHeadAttention(12, 2, neuron_type="proposed", rank=3,
                                       rng=np.random.default_rng(3))
        assert isinstance(attention.query_proj, EfficientQuadraticLinear)


class TestTransformer:
    def _model(self, neuron_type="linear", model_dim=16):
        return Transformer(src_vocab_size=20, tgt_vocab_size=22, model_dim=model_dim,
                           num_heads=4, num_layers=2, hidden_dim=32, max_len=12,
                           neuron_type=neuron_type, rank=3, seed=0)

    def test_forward_logits_shape(self):
        model = self._model()
        src = RNG.integers(3, 20, (2, 6))
        tgt = RNG.integers(3, 22, (2, 5))
        assert model(src, tgt).shape == (2, 5, 22)

    def test_backward_reaches_embeddings(self):
        model = self._model()
        src = RNG.integers(3, 20, (2, 6))
        tgt = RNG.integers(3, 22, (2, 5))
        loss = nn.LabelSmoothingLoss(0.1, ignore_index=0)(model(src, tgt), tgt)
        loss.backward()
        assert model.src_embedding.weight.grad is not None
        assert model.generator.weight.grad is not None

    def test_sequence_longer_than_max_len_raises(self):
        model = self._model()
        with pytest.raises(ValueError):
            model(np.ones((1, 20), dtype=np.int64), np.ones((1, 3), dtype=np.int64))

    def test_greedy_decode_stops_at_eos_and_respects_max_len(self):
        model = self._model()
        src = RNG.integers(3, 20, (3, 6))
        outputs = model.greedy_decode(src, bos_id=1, eos_id=2, max_len=8)
        assert len(outputs) == 3
        assert all(len(sequence) <= 8 for sequence in outputs)
        assert all(2 not in sequence and 0 not in sequence for sequence in outputs)

    def test_greedy_decode_deterministic(self):
        model = self._model()
        model.eval()
        src = RNG.integers(3, 20, (2, 5))
        first = model.greedy_decode(src, bos_id=1, eos_id=2, max_len=6)
        second = model.greedy_decode(src, bos_id=1, eos_id=2, max_len=6)
        assert first == second

    def test_quadratic_variant_has_quadratic_projections(self):
        model = self._model(neuron_type="proposed")
        quadratic = [module for module in model.modules()
                     if isinstance(module, EfficientQuadraticLinear)]
        # 2 encoder layers * 4 projections + 2 decoder layers * 8 projections.
        assert len(quadratic) == 2 * 4 + 2 * 8

    def test_smaller_model_dim_reduces_parameters(self):
        baseline = self._model(model_dim=16)
        smaller = self._model(neuron_type="proposed", model_dim=12)
        assert smaller.num_parameters() < baseline.num_parameters()
