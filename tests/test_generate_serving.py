"""Generation serving surface: bundles, load dispatch, HTTP route, stats."""

import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.data import SyntheticTranslationTask
from repro.experiments import get_scale
from repro.experiments.table2 import build_transformer, save_translation_bundle
from repro.io import load_bundle, save_bundle
from repro.models import SimpleCNN
from repro.serve import GenerationPredictor, Predictor, load


@pytest.fixture(scope="module")
def gen_bundle(tmp_path_factory):
    """A servable generation bundle at table2 smoke geometry (untrained)."""
    scale = get_scale("smoke")
    task = SyntheticTranslationTask(train_size=32, test_size=8,
                                    seed=scale.seed + 31)
    model = build_transformer(task, scale, neuron_type="proposed")
    model.eval()
    bundle_dir = tmp_path_factory.mktemp("gen-bundles")
    name = save_translation_bundle(model, task, discriminator={"test": 1},
                                   bundle_dir=bundle_dir)
    assert name is not None
    return str(bundle_dir / name), model, task


@pytest.fixture(scope="module")
def cls_bundle(tmp_path_factory):
    """A plain classifier bundle (no generation section)."""
    model = SimpleCNN(num_classes=4, neuron_type="linear", base_width=4,
                      image_size=8, seed=5)
    path = tmp_path_factory.mktemp("cls-bundles") / "cls.npz"
    save_bundle(path, model, info={"classes": ["a", "b", "c", "d"],
                                   "input_shape": [3, 8, 8]})
    return str(path)


class TestBundleRoundTrip:
    def test_bundle_records_generation_section(self, gen_bundle):
        path, _, task = gen_bundle
        bundle = load_bundle(path)
        section = bundle.section.get("generation")
        assert section is not None
        assert section["bos_id"] == task.bos_id
        assert section["eos_id"] == task.eos_id
        assert section["pad_id"] == task.pad_id
        assert section["max_len"] == task.max_len
        assert len(section["source_vocab"]) == len(task.source_vocab)
        assert len(section["target_vocab"]) == len(task.target_vocab)

    def test_load_dispatches_on_generation_section(self, gen_bundle, cls_bundle):
        path, _, _ = gen_bundle
        predictor = load(path, warm=False)
        assert isinstance(predictor, GenerationPredictor)
        assert predictor.describe()["type"] == "generation"
        predictor.close()
        classifier = load(cls_bundle, engine="direct", compile=False,
                          warm=False)
        assert isinstance(classifier, Predictor)
        assert not isinstance(classifier, GenerationPredictor)
        classifier.close()

    def test_predict_on_generation_bundle_is_a_clear_error(self, gen_bundle):
        path, _, _ = gen_bundle
        with load(path, warm=False) as predictor:
            with pytest.raises(ValueError, match="generation"):
                predictor.predict(np.zeros((1, 4)))


class TestGenerationPredictor:
    def test_token_inputs_match_greedy_decode(self, gen_bundle):
        path, model, task = gen_bundle
        sources = np.array([[5, 9, 12, 3, 2], [7, 4, 11, 6, 2]])
        with load(path, warm=False) as predictor:
            outputs = predictor.generate(sources)
        expected = model.greedy_decode(sources, bos_id=task.bos_id,
                                       eos_id=task.eos_id,
                                       max_len=task.max_len)
        assert [record["tokens"] for record in outputs] == expected

    def test_text_inputs_round_trip_through_vocabularies(self, gen_bundle):
        path, _, task = gen_bundle
        sentence = " ".join(list(task.source_vocab.id_to_token)[4:7])
        with load(path, warm=False) as predictor:
            outputs = predictor.generate([sentence], max_new_tokens=5)
        record = outputs[0]
        assert "text" in record
        assert record["text"] == " ".join(
            task.target_vocab.decode(record["tokens"]))

    def test_stats_carry_the_generation_section(self, gen_bundle):
        path, _, _ = gen_bundle
        with load(path, warm=False) as predictor:
            predictor.generate([[5, 9, 3]], max_new_tokens=2)
            stats = predictor.stats()
        assert stats["engine"] == "generation"
        assert set(stats["generation"]) == {
            "tokens_generated", "completed", "active_sequences",
            "mean_batch_occupancy", "slots", "cache"}
        assert stats["generation"]["completed"] == 1


def _post_json(url: str, payload: dict | None = None, method: str = "POST"):
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(
        url, data=data, method=method,
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.load(response)


@pytest.fixture
def live_server(gen_bundle, cls_bundle):
    """One server mounting a generation model and a classifier side by side."""
    from repro.serve.http import serve

    gen_path, model, task = gen_bundle
    captured = {}
    done = threading.Event()

    def run():
        serve(models={"gen": gen_path, "cls": cls_bundle}, port=0, quiet=True,
              engine="direct", compile=False,
              ready=lambda server: captured.update(server=server))
        done.set()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    deadline = time.monotonic() + 10
    while "server" not in captured and time.monotonic() < deadline:
        time.sleep(0.02)
    base = "http://%s:%s" % captured["server"].server_address[:2]
    yield base, model, task
    captured["server"].shutdown()
    assert done.wait(10)


class TestHTTPGenerate:
    def test_generate_route_matches_in_process_decode(self, live_server):
        base, model, task = live_server
        sources = [[5, 9, 12, 3, 2], [7, 4, 11, 6, 2]]
        reply = _post_json(f"{base}/v1/models/gen/generate",
                           {"inputs": sources})
        assert reply["model"] == "gen"
        assert reply["count"] == 2
        expected = model.greedy_decode(np.array(sources), bos_id=task.bos_id,
                                       eos_id=task.eos_id,
                                       max_len=task.max_len)
        for record, want in zip(reply["outputs"], expected):
            assert record["tokens"] == want
            assert len(record["logprobs"]) == len(record["tokens"])
            assert record["finish_reason"] in ("eos", "length", "max_len")

    def test_generate_accepts_sampling_options(self, live_server):
        base, _, _ = live_server
        first = _post_json(f"{base}/v1/models/gen/generate",
                           {"inputs": [[5, 9, 3]], "strategy": "sample",
                            "temperature": 0.9, "top_k": 5, "seed": 11,
                            "max_new_tokens": 6})
        second = _post_json(f"{base}/v1/models/gen/generate",
                            {"inputs": [[5, 9, 3]], "strategy": "sample",
                             "temperature": 0.9, "top_k": 5, "seed": 11,
                             "max_new_tokens": 6})
        assert first["outputs"][0]["tokens"] == second["outputs"][0]["tokens"]

    def _expect_error(self, url, code, payload=None):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post_json(url, payload)
        assert excinfo.value.code == code
        return json.load(excinfo.value)["error"]

    def test_error_taxonomy(self, live_server):
        base, _, _ = live_server
        # missing inputs → 400
        assert "inputs" in self._expect_error(
            f"{base}/v1/models/gen/generate", 400, payload={})
        # bad strategy → 400
        self._expect_error(f"{base}/v1/models/gen/generate", 400,
                           payload={"inputs": [[5, 9]], "strategy": "beam"})
        # unknown model → 404
        self._expect_error(f"{base}/v1/models/ghost/generate", 404,
                           payload={"inputs": [[5, 9]]})
        # generate on a classifier bundle → 400 with a pointed message
        assert "predict" in self._expect_error(
            f"{base}/v1/models/cls/generate", 400, payload={"inputs": [[5]]})
        # predict on a generation bundle → 400 as well
        assert "generation" in self._expect_error(
            f"{base}/v1/models/gen/predict", 400,
            payload={"inputs": [[0.0, 1.0]]})

    def test_stats_v2_pin_the_generation_section(self, live_server):
        base, _, _ = live_server
        _post_json(f"{base}/v1/models/gen/generate",
                   {"inputs": [[5, 9, 3]], "max_new_tokens": 2})
        stats = _post_json(f"{base}/v1/stats", method="GET")
        entry = stats["models"]["gen"]
        assert entry["engine"] == "generation"
        assert set(entry["generation"]) == {
            "tokens_generated", "completed", "active_sequences",
            "mean_batch_occupancy", "slots", "cache"}
        assert entry["generation"]["tokens_generated"] >= 1
        # the classifier entry has no generation section
        assert "generation" not in stats["models"]["cls"]
