"""Self-describing bundles: save/load round trips, Trainer integration,
fresh-process reconstruction and the runner's bundle recording."""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

import repro
from repro import nn
from repro.data import DataLoader, SyntheticImageClassification
from repro.experiments import get_scale
from repro.experiments.common import train_image_classifier
from repro.experiments.registry import register, unregister
from repro.experiments.runner import run_experiment
from repro.io import (
    default_bundle_name,
    load_bundle,
    load_checkpoint,
    save_bundle,
    save_checkpoint,
)
from repro.models import SimpleCNN
from repro.optim import SGD
from repro.tensor import Tensor
from repro.training import Trainer


def _tiny_model(seed: int = 3) -> SimpleCNN:
    return SimpleCNN(num_classes=4, neuron_type="proposed", rank=2, base_width=4,
                     image_size=8, seed=seed)


class TestSaveLoad:
    def test_round_trip_predictions_bit_identical(self, tmp_path):
        model = _tiny_model()
        path = save_bundle(tmp_path / "model.npz", model,
                           info={"normalization": {"mean": 0.5, "std": 2.0},
                                 "classes": ["a", "b", "c", "d"],
                                 "input_shape": [3, 8, 8]})
        bundle = load_bundle(path)
        assert bundle.spec["name"] == "simple_cnn"
        assert bundle.normalization == {"mean": 0.5, "std": 2.0}
        assert bundle.classes == ["a", "b", "c", "d"]
        assert bundle.input_shape == (3, 8, 8)

        x = Tensor(np.random.default_rng(0).standard_normal((5, 3, 8, 8))
                   .astype(np.float32))
        expected = model.eval()(x).data
        assert np.array_equal(bundle.model(x).data, expected)

    def test_loaded_model_is_in_eval_mode(self, tmp_path):
        path = save_bundle(tmp_path / "model.npz", _tiny_model())
        bundle = load_bundle(path)
        assert all(not module.training for module in bundle.model.modules())

    def test_unregistered_model_cannot_be_bundled(self, tmp_path):
        with pytest.raises(ValueError, match="register"):
            save_bundle(tmp_path / "nope.npz", nn.Linear(3, 2))

    def test_plain_checkpoint_rejected_with_clear_error(self, tmp_path):
        path = save_checkpoint(tmp_path / "plain.npz", model=nn.Linear(3, 2))
        with pytest.raises(ValueError, match="not a model bundle"):
            load_bundle(path)

    def test_newer_bundle_format_refused(self, tmp_path):
        model = _tiny_model()
        from repro.io.bundle import BUNDLE_FORMAT_VERSION, bundle_section

        section = bundle_section(model)
        section["format_version"] = BUNDLE_FORMAT_VERSION + 1
        path = save_checkpoint(tmp_path / "future.npz", model=model, bundle=section)
        with pytest.raises(ValueError, match="refusing to load"):
            load_bundle(path)

    def test_info_cannot_shadow_structural_keys(self, tmp_path):
        with pytest.raises(ValueError, match="spec"):
            save_bundle(tmp_path / "model.npz", _tiny_model(), info={"spec": {}})

    def test_default_bundle_name_is_deterministic_and_config_sensitive(self):
        assert default_bundle_name(_tiny_model()) == default_bundle_name(_tiny_model())
        other = SimpleCNN(num_classes=5, neuron_type="proposed", rank=2,
                          base_width=4, image_size=8, seed=3)
        assert default_bundle_name(_tiny_model()) != default_bundle_name(other)
        assert default_bundle_name(_tiny_model()).startswith("simple_cnn-")

    def test_bundle_name_discriminator_separates_identical_specs(self):
        # Same architecture trained under different recipes must not collide
        # into one filename (the recipe never reaches the constructor).
        model = _tiny_model()
        short = default_bundle_name(model, {"epochs": 2})
        long = default_bundle_name(model, {"epochs": 20})
        assert short != long
        assert short == default_bundle_name(_tiny_model(), {"epochs": 2})


def _fit_tiny_trainer(checkpoint_dir):
    rng = np.random.default_rng(0)
    inputs = rng.standard_normal((32, 3, 8, 8)).astype(np.float32)
    targets = rng.integers(0, 4, 32)
    model = _tiny_model()
    trainer = Trainer(model, SGD(model.parameters(), lr=0.05, momentum=0.9),
                      nn.CrossEntropyLoss())
    trainer.bundle_info = {"normalization": {"mean": 0.0, "std": 1.0},
                           "classes": [f"class_{i}" for i in range(4)],
                           "input_shape": [3, 8, 8]}
    loader = DataLoader(inputs, targets, batch_size=16, shuffle=True, seed=5)
    trainer.fit(loader, 2, eval_inputs=inputs, eval_targets=targets,
                checkpoint_dir=checkpoint_dir, checkpoint_every=1)
    return trainer


@pytest.mark.slow
class TestTrainerBundles:
    def test_best_checkpoint_is_a_loadable_bundle(self, tmp_path):
        trainer = _fit_tiny_trainer(tmp_path)
        bundle = load_bundle(tmp_path / "best.npz")
        assert bundle.spec["name"] == "simple_cnn"
        assert bundle.input_shape == (3, 8, 8)
        x = Tensor(np.random.default_rng(1).standard_normal((4, 3, 8, 8))
                   .astype(np.float32))
        np.testing.assert_array_equal(bundle.model(x).data,
                                      trainer.model.eval()(x).data)
        # The bundle section rides inside a full training checkpoint — the
        # optimizer/history sections are still there for resuming.
        checkpoint = load_checkpoint(tmp_path / "best.npz")
        assert "optimizer" in checkpoint and "history" in checkpoint

    def test_fresh_process_predictions_bit_identical(self, tmp_path):
        """A bundle loaded in a spawned interpreter reproduces the in-process
        model's predictions byte for byte."""
        trainer = _fit_tiny_trainer(tmp_path)
        inputs = np.random.default_rng(2).standard_normal((6, 3, 8, 8)) \
            .astype(np.float32)
        np.save(tmp_path / "inputs.npy", inputs)
        expected = trainer.model.eval()(Tensor(inputs)).data

        src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        script = (
            "import sys, numpy as np\n"
            "import repro\n"
            "predictor = repro.load(sys.argv[1], warm=False)\n"
            "inputs = np.load(sys.argv[2])\n"
            "np.save(sys.argv[3], predictor.predict_logits(inputs, normalize=False))\n"
        )
        completed = subprocess.run(
            [sys.executable, "-c", script, str(tmp_path / "best.npz"),
             str(tmp_path / "inputs.npy"), str(tmp_path / "logits.npy")],
            capture_output=True, text=True, timeout=120,
            env={**os.environ, "PYTHONPATH": src})
        assert completed.returncode == 0, completed.stderr
        fresh = np.load(tmp_path / "logits.npy")
        assert fresh.tobytes() == expected.tobytes()


def _bundle_probe_runner(scale):
    dataset = SyntheticImageClassification(num_classes=4, image_size=8,
                                           train_size=32, test_size=16, seed=0)
    model = _tiny_model()
    _, metrics = train_image_classifier(model, dataset, scale, epochs=1)
    return {"rows": [metrics], "report": "bundle probe"}


@pytest.mark.slow
class TestRunnerBundleRecording:
    def test_runner_records_servable_bundles_in_artifact_meta(self, tmp_path):
        register(name="_bundle_probe", artifact="Test", title="bundle probe",
                 runner=_bundle_probe_runner)
        try:
            outcome = run_experiment("_bundle_probe", scale=get_scale("smoke"),
                                     cache_dir=tmp_path)
            bundles = outcome.artifact["meta"]["bundles"]
            assert len(bundles) == 1 and bundles[0].startswith("bundles/")
            bundle = load_bundle(tmp_path / bundles[0])
            assert bundle.spec["name"] == "simple_cnn"
            assert bundle.normalization is not None
            assert bundle.input_shape == (3, 8, 8)
            # The artifact JSON on disk carries the same listing (it is what
            # `repro predict` users read to find servable models).
            artifact = json.loads(outcome.path.read_text())
            assert artifact["meta"]["bundles"] == bundles
        finally:
            unregister("_bundle_probe")
