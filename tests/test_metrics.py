"""Tests for accuracy, BLEU and the parameter/MAC profiler."""

import numpy as np
import pytest

from repro import nn
from repro.metrics import (
    EVALUATION_SETTINGS,
    accuracy,
    bleu_score,
    corpus_bleu,
    profile_model,
    tokenize_13a,
    tokenize_international,
    top_k_accuracy,
)
from repro.models import CifarResNet
from repro.quadratic import EfficientQuadraticConv2d, make_conv, neuron_complexity
from repro.tensor import Tensor


class TestAccuracy:
    def test_perfect_and_zero(self):
        logits = np.eye(4) * 10
        assert accuracy(logits, np.arange(4)) == 1.0
        assert accuracy(logits, (np.arange(4) + 1) % 4) == 0.0

    def test_accepts_tensor(self):
        assert accuracy(Tensor(np.eye(3)), np.arange(3)) == 1.0

    def test_top_k(self):
        logits = np.array([[0.1, 0.5, 0.4], [0.9, 0.02, 0.08]])
        assert top_k_accuracy(logits, np.array([2, 1]), k=2) == pytest.approx(0.5)
        assert top_k_accuracy(logits, np.array([2, 1]), k=3) == 1.0


class TestTokenizers:
    def test_13a_separates_punctuation(self):
        assert tokenize_13a("Anna sieht den Ball.") == ["Anna", "sieht", "den", "Ball", "."]

    def test_13a_empty(self):
        assert tokenize_13a("") == []

    def test_international_splits_on_non_word(self):
        assert tokenize_international("Ball. Haus!") == ["Ball", "Haus"]

    def test_settings_cover_four_configurations(self):
        assert len(EVALUATION_SETTINGS) == 4


class TestBleu:
    def test_perfect_match_scores_100(self):
        hypotheses = ["Anna das rote Haus sieht."] * 3
        assert bleu_score(hypotheses, hypotheses) == pytest.approx(100.0)

    def test_no_overlap_scores_0(self):
        score = bleu_score(["aaa bbb ccc ddd"], ["www xxx yyy zzz"], tokenization="13a")
        assert score == pytest.approx(0.0, abs=1e-6)

    def test_partial_overlap_between_0_and_100(self):
        score = bleu_score(["Anna sieht den Ball heute ."], ["Anna sieht den Ball jetzt ."])
        assert 0.0 < score < 100.0

    def test_case_sensitivity(self):
        hypotheses, references = ["anna sieht den ball ."], ["Anna sieht den Ball ."]
        cased = bleu_score(hypotheses, references, cased=True)
        uncased = bleu_score(hypotheses, references, cased=False)
        assert uncased == pytest.approx(100.0)
        assert cased < uncased

    def test_tokenization_affects_score(self):
        hypotheses, references = ["Anna sieht den Ball"], ["Anna sieht den Ball."]
        assert bleu_score(hypotheses, references, tokenization="international") >= \
            bleu_score(hypotheses, references, tokenization="13a")

    def test_brevity_penalty_punishes_short_hypotheses(self):
        full = ["der grosse alte Hund schlaeft hier sehr gerne"]
        short = ["der grosse alte Hund"]
        reference = ["der grosse alte Hund schlaeft hier sehr gerne"]
        assert bleu_score(short, reference) < bleu_score(full, reference)

    def test_corpus_bleu_length_mismatch(self):
        with pytest.raises(ValueError):
            corpus_bleu([["a"]], [["a"], ["b"]])

    def test_corpus_bleu_empty(self):
        assert corpus_bleu([], []) == 0.0

    def test_unknown_tokenization(self):
        with pytest.raises(KeyError):
            bleu_score(["a"], ["a"], tokenization="bogus")


class TestProfiler:
    def test_linear_layer_macs(self):
        model = nn.Sequential(nn.Linear(10, 5, rng=np.random.default_rng(0)))
        profile = profile_model(model, Tensor(np.zeros((1, 10), dtype=np.float32)))
        assert profile.total_macs == 50
        assert profile.total_parameters == 55

    def test_conv_layer_macs(self):
        model = nn.Sequential(nn.Conv2d(3, 8, 3, padding=1, rng=np.random.default_rng(0)))
        profile = profile_model(model, Tensor(np.zeros((1, 3, 10, 10), dtype=np.float32)))
        assert profile.total_macs == 10 * 10 * 8 * 27

    def test_proposed_conv_macs_use_eq10(self):
        layer = EfficientQuadraticConv2d(3, 2, 3, padding=1, rank=4,
                                         rng=np.random.default_rng(0))
        model = nn.Sequential(layer)
        profile = profile_model(model, Tensor(np.zeros((1, 3, 6, 6), dtype=np.float32)))
        assert profile.total_macs == 36 * 2 * ((4 + 1) * 27 + 8)

    def test_baseline_conv_macs_use_table_i(self):
        layer = make_conv("quad2", 3, 4, 3, padding=1, rng=np.random.default_rng(0))
        profile = profile_model(nn.Sequential(layer),
                                Tensor(np.zeros((1, 3, 5, 5), dtype=np.float32)))
        assert profile.total_macs == 25 * 4 * neuron_complexity("quad2", 27).macs

    def test_whole_resnet_profiles_every_conv(self):
        model = CifarResNet(8, base_width=4, seed=0)
        profile = profile_model(model, Tensor(np.zeros((1, 3, 12, 12), dtype=np.float32)))
        # 7 convs + 2 projection shortcuts + classifier.
        assert len(profile.layers) == 10
        assert profile.total_parameters == model.num_parameters()
        assert profile.total_macs > 0

    def test_proposed_resnet_macs_close_to_linear(self):
        # base_width 10 keeps every stage width a multiple of rank+1 = 10, so the
        # comparison isolates the per-output MAC overhead of Eq. (10).
        example = Tensor(np.zeros((1, 3, 12, 12), dtype=np.float32))
        linear_profile = profile_model(CifarResNet(8, base_width=10, seed=0), example)
        proposed_profile = profile_model(
            CifarResNet(8, neuron_type="proposed", rank=9, base_width=10, seed=0), example)
        assert proposed_profile.total_macs < 1.05 * linear_profile.total_macs

    def test_summary_and_rows(self):
        model = nn.Sequential(nn.Linear(4, 4, rng=np.random.default_rng(0)))
        profile = profile_model(model, Tensor(np.zeros((1, 4), dtype=np.float32)))
        assert "parameters" in profile.summary()
        assert profile.as_rows()[0]["type"] == "Linear"

    def test_hooks_removed_after_profiling(self):
        model = nn.Sequential(nn.Linear(4, 4, rng=np.random.default_rng(0)))
        profile_model(model, Tensor(np.zeros((1, 4), dtype=np.float32)))
        assert model[0]._forward_hooks == []

    def test_training_mode_restored(self):
        model = nn.Sequential(nn.Linear(4, 4, rng=np.random.default_rng(0)))
        model.train()
        profile_model(model, Tensor(np.zeros((1, 4), dtype=np.float32)))
        assert model.training
