"""Tests for the Module/Parameter system, containers and hooks."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor


class TinyBlock(nn.Module):
    def __init__(self):
        super().__init__()
        self.linear = nn.Linear(4, 3, rng=np.random.default_rng(0))
        self.scale = nn.Parameter(np.ones(3, dtype=np.float32), tag="quadratic")

    def forward(self, x):
        return self.linear(x) * self.scale


class TestParameterRegistration:
    def test_parameters_are_collected(self):
        block = TinyBlock()
        names = [name for name, _ in block.named_parameters()]
        assert "scale" in names
        assert "linear.weight" in names
        assert "linear.bias" in names
        assert len(block.parameters()) == 3

    def test_parameter_tags(self):
        block = TinyBlock()
        tags = {name: parameter.tag for name, parameter in block.named_parameters()}
        assert tags["scale"] == "quadratic"
        assert tags["linear.weight"] == "linear"

    def test_parameter_requires_grad(self):
        assert all(parameter.requires_grad for parameter in TinyBlock().parameters())

    def test_num_parameters(self):
        block = TinyBlock()
        assert block.num_parameters() == 4 * 3 + 3 + 3

    def test_nested_modules(self):
        outer = nn.Sequential(TinyBlock(), nn.ReLU(), TinyBlock())
        assert len(outer.parameters()) == 6
        module_names = [name for name, _ in outer.named_modules()]
        assert any(name.endswith("linear") for name in module_names)

    def test_zero_grad_clears_all(self):
        block = TinyBlock()
        out = block(Tensor(np.ones((2, 4), dtype=np.float32)))
        out.sum().backward()
        assert any(parameter.grad is not None for parameter in block.parameters())
        block.zero_grad()
        assert all(parameter.grad is None for parameter in block.parameters())


class TestTrainEvalMode:
    def test_mode_propagates_to_children(self):
        model = nn.Sequential(TinyBlock(), nn.Dropout(0.5))
        model.eval()
        assert all(not module.training for module in model.modules())
        model.train()
        assert all(module.training for module in model.modules())

    def test_train_and_eval_return_self_for_chaining(self):
        model = nn.Sequential(TinyBlock(), nn.Dropout(0.5))
        assert model.eval() is model
        assert model.train() is model
        assert model.train(False) is model
        # The chained style call sites rely on: mode-switch then use, inline.
        out = model.eval()(Tensor(np.ones((2, 4), dtype=np.float32)))
        assert out.shape == (2, 3)

    def test_eval_forward_is_deterministic_with_dropout_and_batchnorm(self):
        rng = np.random.default_rng(0)
        model = nn.Sequential(
            nn.Linear(4, 8, rng=rng),
            nn.BatchNorm1d(8),
            nn.Dropout(0.5, rng=np.random.default_rng(1)),
            nn.Linear(8, 3, rng=rng),
        )
        x = np.random.default_rng(2).standard_normal((6, 4)).astype(np.float32)

        # Train-mode forwards differ (dropout draws fresh masks) and move the
        # BatchNorm running statistics.
        train_a = model.train()(Tensor(x)).data.copy()
        train_b = model(Tensor(x)).data.copy()
        assert not np.array_equal(train_a, train_b)

        # Eval-mode forwards are byte-identical: dropout is the identity and
        # BatchNorm reads (without updating) its running statistics.
        eval_a = model.eval()(Tensor(x)).data.copy()
        eval_b = model(Tensor(x)).data.copy()
        assert np.array_equal(eval_a, eval_b)
        assert eval_a.tobytes() == eval_b.tobytes()


class TestStateDict:
    def test_roundtrip(self):
        source = TinyBlock()
        destination = TinyBlock()
        source.scale.data[:] = 7.0
        state = source.state_dict()
        destination.load_state_dict(state)
        np.testing.assert_allclose(destination.scale.data, source.scale.data)
        np.testing.assert_allclose(destination.linear.weight.data, source.linear.weight.data)

    def test_unknown_key_raises(self):
        block = TinyBlock()
        with pytest.raises(KeyError):
            block.load_state_dict({"bogus": np.zeros(1)})

    def test_buffers_saved_and_restored(self):
        bn_source = nn.BatchNorm2d(3)
        bn_source._buffers["running_mean"][:] = 5.0
        bn_target = nn.BatchNorm2d(3)
        bn_target.load_state_dict(bn_source.state_dict())
        np.testing.assert_allclose(bn_target._buffers["running_mean"], 5.0)


class TestContainers:
    def test_sequential_order(self):
        model = nn.Sequential(nn.Linear(2, 4, rng=np.random.default_rng(0)), nn.ReLU())
        out = model(Tensor(np.ones((1, 2), dtype=np.float32)))
        assert out.shape == (1, 4)
        assert np.all(out.data >= 0)

    def test_sequential_indexing_and_len(self):
        model = nn.Sequential(nn.ReLU(), nn.Tanh(), nn.Sigmoid())
        assert len(model) == 3
        assert isinstance(model[1], nn.Tanh)

    def test_module_list(self):
        blocks = nn.ModuleList([nn.Linear(3, 3, rng=np.random.default_rng(i))
                                for i in range(4)])
        assert len(blocks) == 4
        assert len(blocks.parameters()) == 8
        blocks.append(nn.Linear(3, 3, rng=np.random.default_rng(9)))
        assert len(blocks) == 5

    def test_identity(self):
        x = Tensor(np.ones((2, 2)))
        assert nn.Identity()(x) is x


class TestHooks:
    def test_forward_hook_called_with_output(self):
        captured = []
        layer = nn.Linear(2, 3, rng=np.random.default_rng(0))
        layer.register_forward_hook(lambda module, inputs, output: captured.append(output.shape))
        layer(Tensor(np.ones((5, 2), dtype=np.float32)))
        assert captured == [(5, 3)]

    def test_clear_forward_hooks(self):
        captured = []
        layer = nn.Linear(2, 3, rng=np.random.default_rng(0))
        layer.register_forward_hook(lambda *args: captured.append(1))
        layer.clear_forward_hooks()
        layer(Tensor(np.ones((1, 2), dtype=np.float32)))
        assert captured == []

    def test_repr_lists_children(self):
        model = nn.Sequential(nn.ReLU())
        assert "ReLU" in repr(model)
