"""Tests for the prior-work quadratic neuron baselines and the kervolution layer."""

import numpy as np
import pytest

from repro.quadratic import (
    FactorizedQuadraticConv2d,
    FactorizedQuadraticLinear,
    GeneralQuadraticConv2d,
    GeneralQuadraticLinear,
    KervolutionConv2d,
    KervolutionLinear,
    PureQuadraticConv2d,
    Quad1Conv2d,
    Quad1Linear,
    Quad2Conv2d,
    Quad2Linear,
    QuadraticResidualConv2d,
    QuadraticResidualLinear,
    neuron_complexity,
)
from repro.tensor import Tensor, check_gradients


RNG = np.random.default_rng(0)


def _x(shape):
    return RNG.standard_normal(shape).astype(np.float64)


class TestDenseFormulas:
    def test_quad2_formula(self):
        layer = Quad2Linear(6, 4, rng=np.random.default_rng(1))
        x = _x((3, 6))
        expected = ((x @ layer.weight_a.data.T) * (x @ layer.weight_b.data.T)
                    + x @ layer.weight_linear.data.T + layer.bias.data)
        np.testing.assert_allclose(layer(Tensor(x)).data, expected, rtol=1e-5)

    def test_quad1_formula(self):
        layer = Quad1Linear(6, 4, rng=np.random.default_rng(2))
        x = _x((3, 6))
        expected = ((x @ layer.weight_a.data.T) * (x @ layer.weight_b.data.T)
                    + (x ** 2) @ layer.weight_square.data.T + layer.bias.data)
        np.testing.assert_allclose(layer(Tensor(x)).data, expected, rtol=1e-5)

    def test_quadratic_residual_reuses_first_projection(self):
        layer = QuadraticResidualLinear(6, 4, rng=np.random.default_rng(3))
        x = _x((3, 6))
        first = x @ layer.weight_a.data.T + layer.bias.data
        expected = first * (x @ layer.weight_b.data.T) + first
        np.testing.assert_allclose(layer(Tensor(x)).data, expected, rtol=1e-5)

    def test_general_quadratic_formula(self):
        layer = GeneralQuadraticLinear(5, 3, rng=np.random.default_rng(4))
        x = _x((2, 5))
        out = layer(Tensor(x)).data
        for sample in range(2):
            for neuron in range(3):
                expected = (x[sample] @ layer.quadratic.data[neuron] @ x[sample]
                            + layer.weight.data[neuron] @ x[sample] + layer.bias.data[neuron])
                assert out[sample, neuron] == pytest.approx(expected, rel=1e-4)

    def test_factorized_formula(self):
        layer = FactorizedQuadraticLinear(6, 3, rank=2, rng=np.random.default_rng(5))
        x = _x((2, 6))
        left = (x @ layer.factor_a.data).reshape(2, 3, 2)
        right = (x @ layer.factor_b.data).reshape(2, 3, 2)
        expected = (left * right).sum(-1) + x @ layer.weight.data.T + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).data, expected, rtol=1e-5)

    def test_kervolution_linear_formula(self):
        layer = KervolutionLinear(6, 4, degree=2, offset=0.5, rng=np.random.default_rng(6))
        x = _x((3, 6))
        expected = (x @ layer.weight.data.T + layer.bias.data + 0.5) ** 2
        np.testing.assert_allclose(layer(Tensor(x)).data, expected, rtol=1e-5)

    @pytest.mark.parametrize("layer_cls", [Quad1Linear, Quad2Linear, QuadraticResidualLinear,
                                           GeneralQuadraticLinear])
    def test_dense_gradients(self, layer_cls):
        layer = layer_cls(5, 3, rng=np.random.default_rng(7))
        for parameter in layer.parameters():
            parameter.data = parameter.data.astype(np.float64)
        x = Tensor(_x((2, 5)), requires_grad=True)
        check_gradients(lambda: layer(x).tanh().sum(), list(layer.parameters()) + [x],
                        tolerance=1e-4)


class TestDenseParameterCountsMatchTableI:
    @pytest.mark.parametrize("layer_cls,neuron_type,kwargs", [
        (Quad1Linear, "quad1", {}),
        (Quad2Linear, "quad2", {}),
        (QuadraticResidualLinear, "quad_residual", {}),
        (GeneralQuadraticLinear, "general", {}),
        (FactorizedQuadraticLinear, "factorized", {"rank": 3}),
    ])
    def test_parameters_per_neuron(self, layer_cls, neuron_type, kwargs):
        n, out = 11, 4
        layer = layer_cls(n, out, bias=False, rng=np.random.default_rng(8), **kwargs)
        expected = out * neuron_complexity(neuron_type, n, kwargs.get("rank", 1)).parameters
        assert layer.num_parameters() == expected


class TestConvBaselines:
    @pytest.mark.parametrize("layer_cls,kwargs", [
        (Quad1Conv2d, {}),
        (Quad2Conv2d, {}),
        (QuadraticResidualConv2d, {}),
        (FactorizedQuadraticConv2d, {"rank": 2}),
        (GeneralQuadraticConv2d, {}),
        (PureQuadraticConv2d, {}),
        (KervolutionConv2d, {"degree": 3}),
    ])
    def test_shapes_and_backward(self, layer_cls, kwargs):
        layer = layer_cls(3, 5, 3, padding=1, rng=np.random.default_rng(9), **kwargs)
        x = Tensor(_x((2, 3, 6, 6)).astype(np.float32), requires_grad=True)
        out = layer(x)
        assert out.shape == (2, 5, 6, 6)
        out.tanh().sum().backward()
        assert all(parameter.grad is not None for parameter in layer.parameters())

    def test_quad2_conv_matches_composition_of_convs(self):
        from repro.tensor import conv2d
        layer = Quad2Conv2d(2, 3, 3, padding=1, rng=np.random.default_rng(10))
        x = _x((1, 2, 5, 5))
        expected = (conv2d(Tensor(x), layer.weight_a, None, padding=1).data
                    * conv2d(Tensor(x), layer.weight_b, None, padding=1).data
                    + conv2d(Tensor(x), layer.weight_c, layer.bias, padding=1).data)
        np.testing.assert_allclose(layer(Tensor(x)).data, expected, rtol=1e-5)

    def test_pure_quadratic_has_no_linear_parameters(self):
        layer = PureQuadraticConv2d(2, 3, 3, rng=np.random.default_rng(11))
        names = [name for name, _ in layer.named_parameters()]
        assert names == ["quadratic"]

    def test_general_conv_quadratic_tag(self):
        layer = GeneralQuadraticConv2d(2, 2, 3, rng=np.random.default_rng(12))
        assert layer.quadratic.tag == "quadratic"

    def test_stride_reduces_resolution(self):
        layer = Quad2Conv2d(3, 4, 3, stride=2, padding=1, rng=np.random.default_rng(13))
        out = layer(Tensor(_x((1, 3, 8, 8)).astype(np.float32)))
        assert out.shape == (1, 4, 4, 4)


class TestKervolution:
    def test_degree_validation(self):
        with pytest.raises(ValueError):
            KervolutionConv2d(3, 4, 3, degree=0)
        with pytest.raises(ValueError):
            KervolutionLinear(3, 4, degree=0)

    def test_no_extra_parameters_vs_conv(self):
        from repro.nn import Conv2d
        kerv = KervolutionConv2d(3, 8, 3, rng=np.random.default_rng(14))
        conv = Conv2d(3, 8, 3, rng=np.random.default_rng(14))
        assert kerv.num_parameters() == conv.num_parameters()

    def test_learnable_offset_adds_parameter(self):
        layer = KervolutionConv2d(3, 4, 3, learnable_offset=True,
                                  rng=np.random.default_rng(15))
        names = [name for name, _ in layer.named_parameters()]
        assert "offset" in names

    def test_higher_degree_amplifies_large_responses(self):
        """The mechanism behind the Fig. 6 instability: large responses grow polynomially."""
        rng = np.random.default_rng(16)
        x = Tensor(np.abs(rng.standard_normal((1, 3, 6, 6)).astype(np.float32)) * 3)
        degree2 = KervolutionConv2d(3, 4, 3, degree=2, rng=np.random.default_rng(17))
        degree4 = KervolutionConv2d(3, 4, 3, degree=4, rng=np.random.default_rng(17))
        assert float(np.abs(degree4(x).data).max()) > float(np.abs(degree2(x).data).max())

    def test_repr(self):
        assert "degree=3" in repr(KervolutionConv2d(3, 4, 3, degree=3))
