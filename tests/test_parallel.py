"""Parallel execution subsystem: locks, seeding, executor, parallel sweeps.

The process-pool tests need task functions and experiment specs that are
importable *by name* inside spawned worker processes (the executor ships only
dotted references across the process boundary).  A session-scoped fixture
writes a helper module to a temp directory; per-test fixtures put it on
``sys.path`` / ``$PYTHONPATH`` and name it in ``$REPRO_EXPERIMENT_MODULES``
so both the parent and fresh worker interpreters can resolve everything.
"""

import os
import subprocess
import sys
import threading
import time

import pytest

import repro
from repro.experiments.registry import unregister
from repro.experiments.runner import run_experiment, run_many
from repro.io.serialization import atomic_write_json
from repro.parallel import (
    FileLock,
    LockTimeout,
    ParallelTaskError,
    Task,
    TaskEvent,
    derive_seed,
    effective_jobs,
    parallel_depth,
    resolve_callable,
    run_tasks,
)
from repro.parallel.worker import DEPTH_ENV

SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))

HELPER_MODULE = "repro_par_helpers"

#: Specs the helper module registers (cleaned out of the parent's registry
#: after each test so the registry-completeness test stays truthful).
PROBE_SPECS = ("par_slow", "par_det", "par_flaky", "par_bad")

HELPER_SOURCE = '''
"""Importable-by-name task functions and probe experiment specs for tests."""
import os
import time

import numpy as np

from repro.experiments.registry import register


def square(x):
    return x * x


def slow_square(x, delay=0.2):
    time.sleep(delay)
    return x * x


def global_rand(label):
    # Deliberately uses the *global* legacy RNG: only the executor's
    # deterministic per-task seeding makes this reproducible.
    return {"label": label, "value": float(np.random.random())}


def fail_until(marker_path, attempts_needed=1, value=7):
    count = 1
    if os.path.exists(marker_path):
        with open(marker_path) as handle:
            count = int(handle.read() or 0) + 1
    with open(marker_path, "w") as handle:
        handle.write(str(count))
    if count <= attempts_needed:
        raise RuntimeError(f"transient failure #{count}")
    return value


def always_fail(**_ignored):
    raise ValueError("permanent failure")


def hard_crash():
    os._exit(13)  # simulates a segfaulted / OOM-killed worker


def grid_cell(scale, depth):
    return {"depth": depth, "scale_seed": scale["seed"] if isinstance(scale, dict)
            else scale.seed}


def _slow_runner(scale):
    log = os.environ.get("PAR_PROBE_LOG")
    if log:
        with open(log, "a") as handle:
            handle.write(f"{os.getpid()}\\n")
    time.sleep(float(os.environ.get("PAR_PROBE_SLEEP", "0.2")))
    return {"rows": [1, 2, 3], "report": "slow probe"}


def _det_runner(scale):
    return {"rows": [{"i": i, "v": i * (scale.seed + 1)} for i in range(4)],
            "report": "deterministic probe"}


def _flaky_runner(scale):
    marker = os.environ["PAR_PROBE_FLAKY_MARKER"]
    fail_until(marker, attempts_needed=1, value=0)
    return {"rows": ["recovered"], "report": "flaky probe"}


def _bad_runner(scale):
    raise RuntimeError("driver exploded")


def register_probes():
    register(name="par_slow", artifact="Test", title="slow probe",
             runner=_slow_runner)
    register(name="par_det", artifact="Test", title="deterministic probe",
             runner=_det_runner)
    register(name="par_flaky", artifact="Test", title="flaky probe",
             runner=_flaky_runner)
    register(name="par_bad", artifact="Test", title="always-failing probe",
             runner=_bad_runner)


register_probes()
'''


@pytest.fixture(scope="session")
def helper_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("par_helpers")
    (directory / f"{HELPER_MODULE}.py").write_text(HELPER_SOURCE)
    return directory


@pytest.fixture
def helper_env(helper_dir, monkeypatch):
    """Make the helper module importable here and in spawned workers."""
    monkeypatch.syspath_prepend(str(helper_dir))
    existing = os.environ.get("PYTHONPATH", "")
    monkeypatch.setenv("PYTHONPATH", os.pathsep.join(
        part for part in (SRC_DIR, str(helper_dir), existing) if part))
    monkeypatch.setenv("REPRO_EXPERIMENT_MODULES", HELPER_MODULE)
    module = __import__(HELPER_MODULE)
    module.register_probes()  # re-register (idempotent) after prior cleanup
    yield module
    for name in PROBE_SPECS:
        unregister(name)


def ref(function_name: str) -> str:
    return f"{HELPER_MODULE}:{function_name}"


class TestFileLock:
    def test_exclusive_across_handles(self, tmp_path):
        path = tmp_path / "x.lock"
        with FileLock(path):
            with pytest.raises(LockTimeout):
                FileLock(path, timeout=0.2, poll_interval=0.02).acquire()
        # Released: a fresh handle acquires immediately.
        with FileLock(path, timeout=0.2):
            pass

    def test_threads_serialize_critical_section(self, tmp_path):
        path = tmp_path / "y.lock"
        active = []
        overlaps = []

        def worker():
            with FileLock(path):
                active.append(1)
                overlaps.append(len(active))
                time.sleep(0.05)
                active.pop()

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert max(overlaps) == 1

    def test_released_on_exception(self, tmp_path):
        path = tmp_path / "z.lock"
        with pytest.raises(RuntimeError):
            with FileLock(path):
                raise RuntimeError("boom")
        with FileLock(path, timeout=0.2):
            pass

    def test_not_reentrant(self, tmp_path):
        lock = FileLock(tmp_path / "r.lock")
        with lock:
            with pytest.raises(RuntimeError, match="already held"):
                lock.acquire()


class TestSeeding:
    def test_derive_seed_deterministic_and_distinct(self):
        assert derive_seed(0, "fig4", 20) == derive_seed(0, "fig4", 20)
        assert derive_seed(0, "fig4", 20) != derive_seed(0, "fig4", 32)
        assert derive_seed(0, "fig4", 20) != derive_seed(1, "fig4", 20)
        assert 0 <= derive_seed(0, "anything") < 2 ** 32

    def test_component_order_matters(self):
        assert derive_seed(0, "a", "b") != derive_seed(0, "b", "a")


class TestResolveCallable:
    def test_resolves_dotted_reference(self):
        assert resolve_callable("os.path:join") is os.path.join

    def test_rejects_malformed_and_noncallable(self):
        with pytest.raises(ValueError, match="module:attribute"):
            resolve_callable("os.path.join")
        with pytest.raises(TypeError, match="non-callable"):
            resolve_callable("os:sep")


class TestExecutorInline:
    def test_results_in_submission_order(self, helper_env):
        tasks = [Task(key=f"t{i}", fn=ref("square"), kwargs={"x": i})
                 for i in range(5)]
        results = run_tasks(tasks, jobs=1)
        assert [result.value for result in results] == [0, 1, 4, 9, 16]
        assert all(result.ok and result.attempts == 1 for result in results)

    def test_transient_failure_retried_once(self, helper_env, tmp_path):
        marker = tmp_path / "attempts"
        events = []
        [result] = run_tasks(
            [Task(key="flaky", fn=ref("fail_until"),
                  kwargs={"marker_path": str(marker), "attempts_needed": 1})],
            jobs=1, retries=1, on_event=events.append)
        assert result.ok and result.value == 7 and result.attempts == 2
        assert [event.kind for event in events] == ["submitted", "retrying", "completed"]

    def test_permanent_failure_reported_not_raised(self, helper_env):
        events = []
        results = run_tasks(
            [Task(key="bad", fn=ref("always_fail")),
             Task(key="good", fn=ref("square"), kwargs={"x": 3})],
            jobs=1, retries=1, on_event=events.append)
        assert not results[0].ok and "permanent failure" in results[0].error
        assert results[0].attempts == 2 and "ValueError" in results[0].traceback
        assert results[1].ok and results[1].value == 9
        assert [e.kind for e in events if e.key == "bad"] == \
            ["submitted", "retrying", "failed"]

    def test_duplicate_keys_rejected(self, helper_env):
        tasks = [Task(key="same", fn=ref("square"), kwargs={"x": 1}),
                 Task(key="same", fn=ref("square"), kwargs={"x": 2})]
        with pytest.raises(ValueError, match="unique"):
            run_tasks(tasks, jobs=1)

    def test_effective_jobs_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        monkeypatch.delenv(DEPTH_ENV, raising=False)
        assert effective_jobs(None) == 1
        assert effective_jobs(3) == 3
        assert effective_jobs("auto") == (os.cpu_count() or 1)
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert effective_jobs(None) == 5
        monkeypatch.setenv(DEPTH_ENV, "1")
        assert parallel_depth() == 1
        assert effective_jobs(8) == 1  # nested fan-outs clamp to sequential


class TestProcessPool:
    def test_pool_preserves_order_and_isolates_pids(self, helper_env):
        tasks = [Task(key=f"t{i}", fn=ref("square"), kwargs={"x": i})
                 for i in range(4)]
        results = run_tasks(tasks, jobs=2)
        assert [result.value for result in results] == [0, 1, 4, 9]
        assert all(result.pid != os.getpid() for result in results)

    def test_seeded_global_rng_matches_inline(self, helper_env):
        tasks = [Task(key=f"rand{i}", fn=ref("global_rand"),
                      kwargs={"label": f"rand{i}"}) for i in range(3)]
        inline = run_tasks(tasks, jobs=1, seed=123)
        pooled = run_tasks(tasks, jobs=2, seed=123)
        assert [r.value for r in inline] == [r.value for r in pooled]
        values = [r.value["value"] for r in inline]
        assert len(set(values)) == len(values)  # distinct keys → distinct seeds

    def test_worker_exception_retried_then_reported(self, helper_env, tmp_path):
        events = []
        results = run_tasks(
            [Task(key="transient", fn=ref("fail_until"),
                  kwargs={"marker_path": str(tmp_path / "m"), "attempts_needed": 1}),
             Task(key="broken", fn=ref("always_fail")),
             Task(key="fine", fn=ref("square"), kwargs={"x": 6})],
            jobs=2, retries=1, on_event=events.append)
        transient, broken, fine = results
        assert transient.ok and transient.value == 7 and transient.attempts == 2
        assert not broken.ok and broken.attempts == 2
        assert fine.ok and fine.value == 36
        assert any(e.kind == "retrying" and e.key == "transient" for e in events)
        assert any(e.kind == "failed" and e.key == "broken" for e in events)

    def test_hard_worker_crash_is_contained(self, helper_env):
        results = run_tasks(
            [Task(key="crash", fn=ref("hard_crash")),
             Task(key="fine", fn=ref("square"), kwargs={"x": 5})],
            jobs=2, retries=1)
        crash, fine = results
        assert not crash.ok and "crashed" in crash.error
        assert fine.ok and fine.value == 25

    def test_single_task_runs_inline_without_a_pool(self, helper_env):
        [result] = run_tasks([Task(key="solo", fn=ref("square"),
                                   kwargs={"x": 7})], jobs=4)
        assert result.ok and result.value == 49
        assert result.pid == os.getpid()  # no pool spawned for one task

    def test_nested_fanout_clamped_inside_worker(self, helper_env):
        tasks = [Task(key=f"depth{i}", fn="repro.parallel.executor:effective_jobs",
                      kwargs={"jobs": 8}) for i in range(2)]
        results = run_tasks(tasks, jobs=2)
        assert all(result.ok and result.value == 1 for result in results)


class TestRunnerParallel:
    def test_parallel_sweep_byte_identical_to_sequential(self, helper_env, tmp_path):
        names = ["par_det", "par_slow"]
        sequential = run_many(names, scale="smoke", cache_dir=tmp_path / "seq",
                              jobs=1)
        parallel = run_many(names, scale="smoke", cache_dir=tmp_path / "par",
                            jobs=2)
        assert all(outcome.ok and not outcome.cache_hit
                   for outcome in sequential + parallel)
        for seq_outcome, par_outcome in zip(sequential, parallel):
            assert seq_outcome.path.name == par_outcome.path.name
            assert seq_outcome.path.read_bytes() == par_outcome.path.read_bytes()
        # Repeat parallel invocation: 100% cache hits.
        again = run_many(names, scale="smoke", cache_dir=tmp_path / "par", jobs=2)
        assert all(outcome.cache_hit for outcome in again)

    def test_failed_experiment_does_not_abort_sweep(self, helper_env, tmp_path):
        outcomes = run_many(["par_bad", "par_det"], scale="smoke",
                            cache_dir=tmp_path, jobs=1)
        assert not outcomes[0].ok and "driver exploded" in outcomes[0].error
        assert outcomes[1].ok and outcomes[1].result["report"] == "deterministic probe"

    def test_flaky_experiment_retried_and_recovers(self, helper_env, tmp_path,
                                                   monkeypatch):
        monkeypatch.setenv("PAR_PROBE_FLAKY_MARKER", str(tmp_path / "flaky"))
        outcomes = run_many(["par_flaky"], scale="smoke", cache_dir=tmp_path, jobs=1)
        assert outcomes[0].ok and outcomes[0].result["rows"] == ["recovered"]

    def test_two_processes_racing_one_key_train_exactly_once(self, helper_env,
                                                             tmp_path, monkeypatch):
        log = tmp_path / "train.log"
        monkeypatch.setenv("PAR_PROBE_LOG", str(log))
        monkeypatch.setenv("PAR_PROBE_SLEEP", "1.0")
        cache = tmp_path / "cache"
        script = (f"from repro.experiments.runner import run_experiment\n"
                  f"outcome = run_experiment('par_slow', scale='smoke', "
                  f"cache_dir={str(cache)!r})\n"
                  f"print('HIT' if outcome.cache_hit else 'RAN')")
        env = dict(os.environ)
        processes = [subprocess.Popen([sys.executable, "-c", script], env=env,
                                      stdout=subprocess.PIPE, text=True)
                     for _ in range(2)]
        outputs = [process.communicate(timeout=120)[0].strip()
                   for process in processes]
        assert all(process.returncode == 0 for process in processes)
        # The cache key was trained exactly once, by exactly one process...
        assert len(log.read_text().splitlines()) == 1
        # ...and the loser of the race came back as a cache hit.
        assert sorted(outputs) == ["HIT", "RAN"]
        assert len(list(cache.glob("par_slow-*.json"))) == 1

    def test_grid_fans_out_and_surfaces_failures(self, helper_env):
        from repro.experiments.common import run_model_grid
        from repro.experiments.config import get_scale

        scale = get_scale("smoke")
        rows = run_model_grid("probe", ref("grid_cell"),
                              [{"depth": d} for d in (8, 14, 20)], scale, jobs=1)
        assert [row["depth"] for row in rows] == [8, 14, 20]
        assert all(row["scale_seed"] == scale.seed for row in rows)
        with pytest.raises(ParallelTaskError, match="permanent failure"):
            run_model_grid("probe", ref("always_fail"),
                           [{"depth": 8}], scale, jobs=1)


class TestAtomicWrite:
    def test_writes_json_and_leaves_no_temp_files(self, tmp_path):
        path = tmp_path / "artifact.json"
        atomic_write_json(path, {"a": [1, 2], "b": "x"})
        import json
        assert json.loads(path.read_text()) == {"a": [1, 2], "b": "x"}
        assert list(tmp_path.glob("*.tmp")) == []

    def test_overwrite_is_atomic_replace(self, tmp_path):
        path = tmp_path / "artifact.json"
        atomic_write_json(path, {"version": 1})
        atomic_write_json(path, {"version": 2})
        import json
        assert json.loads(path.read_text()) == {"version": 2}
        assert list(tmp_path.glob("*.tmp")) == []

    def test_unserializable_payload_preserves_existing_file(self, tmp_path):
        path = tmp_path / "artifact.json"
        atomic_write_json(path, {"ok": True})
        with pytest.raises(TypeError):
            atomic_write_json(path, {"bad": object()})
        import json
        assert json.loads(path.read_text()) == {"ok": True}
        assert list(tmp_path.glob("*.tmp")) == []
