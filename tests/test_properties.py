"""Hypothesis property tests for core invariants of the tensor engine and metrics."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.metrics import corpus_bleu
from repro.quadratic import EfficientQuadraticLinear, neurons_for_width
from repro.tensor import Tensor, unbroadcast
from repro.tensor import functional as F


finite_floats = st.floats(min_value=-100, max_value=100, allow_nan=False,
                          allow_infinity=False, width=32)


def small_arrays(max_side=4):
    return hnp.arrays(dtype=np.float64,
                      shape=hnp.array_shapes(min_dims=1, max_dims=3, min_side=1,
                                             max_side=max_side),
                      elements=st.floats(min_value=-10, max_value=10, allow_nan=False))


class TestTensorAlgebraProperties:
    @settings(max_examples=50, deadline=None)
    @given(small_arrays(), small_arrays())
    def test_addition_commutes(self, a, b):
        if a.shape != b.shape:
            return
        left = (Tensor(a) + Tensor(b)).data
        right = (Tensor(b) + Tensor(a)).data
        np.testing.assert_allclose(left, right)

    @settings(max_examples=50, deadline=None)
    @given(small_arrays())
    def test_double_negation_is_identity(self, a):
        np.testing.assert_allclose((-(-Tensor(a))).data, a)

    @settings(max_examples=50, deadline=None)
    @given(small_arrays())
    def test_sum_matches_numpy(self, a):
        assert float(Tensor(a).sum().data) == pytest_approx(a.sum())

    @settings(max_examples=50, deadline=None)
    @given(small_arrays())
    def test_relu_is_idempotent_and_nonnegative(self, a):
        once = Tensor(a).relu()
        twice = once.relu()
        np.testing.assert_allclose(once.data, twice.data)
        assert np.all(once.data >= 0)

    @settings(max_examples=50, deadline=None)
    @given(small_arrays())
    def test_reshape_preserves_content(self, a):
        flat = Tensor(a).reshape(-1)
        np.testing.assert_allclose(np.sort(flat.data), np.sort(a.reshape(-1)))

    @settings(max_examples=50, deadline=None)
    @given(small_arrays())
    def test_gradient_of_sum_is_ones(self, a):
        t = Tensor(a, requires_grad=True)
        t.sum().backward()
        np.testing.assert_allclose(t.grad, np.ones_like(a))

    @settings(max_examples=30, deadline=None)
    @given(hnp.arrays(dtype=np.float64, shape=(3, 4),
                      elements=st.floats(min_value=-5, max_value=5, allow_nan=False)))
    def test_unbroadcast_preserves_total_gradient_mass(self, grad):
        reduced = unbroadcast(grad, (4,))
        assert reduced.shape == (4,)
        assert float(reduced.sum()) == pytest_approx(float(grad.sum()))


class TestSoftmaxProperties:
    @settings(max_examples=50, deadline=None)
    @given(hnp.arrays(dtype=np.float64, shape=st.tuples(st.integers(1, 5), st.integers(2, 6)),
                      elements=st.floats(min_value=-30, max_value=30, allow_nan=False)))
    def test_softmax_is_a_distribution(self, logits):
        probs = F.softmax(Tensor(logits), axis=-1).data
        np.testing.assert_allclose(probs.sum(axis=-1), 1.0, rtol=1e-5)
        assert np.all(probs >= 0)

    @settings(max_examples=50, deadline=None)
    @given(hnp.arrays(dtype=np.float64, shape=(3, 5),
                      elements=st.floats(min_value=-30, max_value=30, allow_nan=False)),
           st.floats(min_value=-50, max_value=50, allow_nan=False))
    def test_softmax_shift_invariance(self, logits, shift):
        base = F.softmax(Tensor(logits), axis=-1).data
        shifted = F.softmax(Tensor(logits + shift), axis=-1).data
        np.testing.assert_allclose(base, shifted, atol=1e-6)


class TestQuadraticNeuronProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=1, max_value=64), st.integers(min_value=1, max_value=12))
    def test_neurons_for_width_covers_but_not_overshoots(self, width, rank):
        neurons = neurons_for_width(width, rank)
        assert neurons * (rank + 1) >= width
        assert (neurons - 1) * (rank + 1) < width

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=2, max_value=10), st.integers(min_value=1, max_value=4),
           st.integers(min_value=0, max_value=1000))
    def test_dense_layer_output_width_and_finiteness(self, in_features, rank, seed):
        layer = EfficientQuadraticLinear(in_features, 2, rank=rank,
                                         rng=np.random.default_rng(seed))
        x = np.random.default_rng(seed + 1).standard_normal((3, in_features)).astype(np.float32)
        out = layer(Tensor(x))
        assert out.shape == (3, 2 * (rank + 1))
        assert np.all(np.isfinite(out.data))


class TestBleuProperties:
    sentences = st.lists(st.sampled_from(["anna", "sieht", "das", "haus", "hund", "."]),
                         min_size=1, max_size=8)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(sentences, min_size=1, max_size=4))
    def test_bleu_bounded_and_perfect_on_self(self, corpus):
        score = corpus_bleu(corpus, corpus)
        assert 0.0 <= score <= 100.0 + 1e-9
        assert score == pytest_approx(100.0)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(sentences, min_size=1, max_size=4), st.lists(sentences, min_size=1,
                                                                 max_size=4))
    def test_bleu_never_exceeds_100(self, hypotheses, references):
        if len(hypotheses) != len(references):
            return
        assert corpus_bleu(hypotheses, references) <= 100.0 + 1e-9


def pytest_approx(value, rel=1e-6, abs_tol=1e-9):
    import pytest
    return pytest.approx(value, rel=rel, abs=abs_tol)
