"""Serving engines: direct vs batched scheduling, the router, the v1 HTTP API."""

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro import cli
from repro.models import SimpleCNN
from repro.nn.module import Module
from repro.serve import (
    BatchedEngine,
    DirectEngine,
    EngineClosed,
    InferenceSession,
    ModelRouter,
    Predictor,
    QueueFull,
    ServingEngine,
    make_engine,
    make_server,
)


def _tiny_model(seed: int = 3, neuron_type: str = "proposed") -> SimpleCNN:
    rank = {"proposed": 2}.get(neuron_type)
    kwargs = {"rank": rank} if rank is not None else {}
    return SimpleCNN(num_classes=4, neuron_type=neuron_type, base_width=4,
                     image_size=8, seed=seed, **kwargs)


def _inputs(count: int, seed: int = 0) -> np.ndarray:
    return np.random.default_rng(seed).standard_normal((count, 3, 8, 8)) \
        .astype(np.float32)


class Doubler(Module):
    """Shape-agnostic model: counts forwards, returns ``2 * x``."""

    def __init__(self):
        super().__init__()
        self.forwards = 0

    def forward(self, x):
        self.forwards += 1
        return x * 2


class Exploder(Module):
    def forward(self, x):
        raise ArithmeticError("kaboom")


class TestDirectEngine:
    def test_submit_returns_resolved_future_matching_session(self):
        model = _tiny_model()
        session = InferenceSession(model, max_batch=16)
        engine = DirectEngine(session)
        x = _inputs(5)
        future = engine.submit(x)
        assert future.done()
        np.testing.assert_array_equal(
            future.result(), InferenceSession(model, max_batch=16).predict(x))

    def test_stats_accumulate(self):
        engine = DirectEngine(InferenceSession(_tiny_model(), max_batch=8))
        engine.predict(_inputs(3))
        engine.predict(_inputs(2))
        stats = engine.stats()
        assert stats["engine"] == "direct"
        assert stats["requests"] == 2
        assert stats["samples"] == 5

    def test_closed_engine_rejects_submissions(self):
        engine = DirectEngine(InferenceSession(_tiny_model()))
        engine.close()
        with pytest.raises(EngineClosed):
            engine.submit(_inputs(1))

    def test_forward_errors_delivered_via_future(self):
        engine = DirectEngine(InferenceSession(Doubler(), strict_no_graph=False))
        with pytest.raises(ValueError, match="batched"):
            engine.submit(np.zeros(3, dtype=np.float32)).result()


class TestMakeEngine:
    def test_resolves_names_and_instances(self):
        session = InferenceSession(_tiny_model())
        assert isinstance(make_engine("direct", session), DirectEngine)
        assert isinstance(make_engine(None, session), DirectEngine)
        batched = make_engine("batched", session, max_wait_ms=1.0, queue_size=7)
        try:
            assert isinstance(batched, BatchedEngine)
            assert batched.max_wait_ms == 1.0
            assert batched.queue_size == 7
            assert batched.max_batch == session.max_batch
        finally:
            batched.close()
        custom = DirectEngine(session)
        assert make_engine(custom, session) is custom

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown serving engine"):
            make_engine("gpu", InferenceSession(_tiny_model()))

    def test_custom_subclass_plugs_into_predictor(self):
        class Recording(DirectEngine):
            name = "recording"

            def submit(self, inputs):
                self.seen = len(inputs)
                return super().submit(inputs)

        model = _tiny_model()
        predictor = Predictor(model, input_shape=(3, 8, 8))
        predictor_custom = Predictor(model, input_shape=(3, 8, 8),
                                     engine=Recording(predictor.session))
        x = _inputs(3)
        np.testing.assert_array_equal(predictor_custom.predict(x),
                                      predictor.predict(x))
        assert predictor_custom.engine.seen == 3
        assert predictor_custom.describe()["engine"] == "recording"


class TestBatchedEngine:
    def test_single_request_round_trip(self):
        model = _tiny_model()
        session = InferenceSession(model, max_batch=16)
        with BatchedEngine(session, max_wait_ms=1.0) as engine:
            x = _inputs(4)
            np.testing.assert_array_equal(
                engine.predict(x, timeout=30),
                InferenceSession(model, max_batch=16).predict(x))

    def test_concurrent_clients_byte_identical_to_sequential_direct(self):
        """N client threads through the batcher == sequential direct calls.

        Requests carry exactly ``max_batch`` rows so the session chunks every
        fused batch at request boundaries — fused execution is then
        byte-identical to per-request execution by construction.
        """
        model = _tiny_model()
        rows, clients, per_client = 4, 8, 5
        direct = DirectEngine(InferenceSession(model, max_batch=rows))
        batched = BatchedEngine(InferenceSession(model, max_batch=rows),
                                max_wait_ms=5.0, queue_size=256)
        requests = {(c, i): _inputs(rows, seed=97 * c + i)
                    for c in range(clients) for i in range(per_client)}
        expected = {key: direct.predict(x) for key, x in requests.items()}

        results, errors = {}, []
        barrier = threading.Barrier(clients)

        def client(c):
            try:
                barrier.wait()
                futures = [(i, batched.submit(requests[c, i]))
                           for i in range(per_client)]
                for i, future in futures:
                    results[c, i] = future.result(timeout=60)
            except Exception as error:  # noqa: BLE001 — asserted below
                errors.append(error)

        threads = [threading.Thread(target=client, args=(c,))
                   for c in range(clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        batched.close()
        assert not errors
        assert len(results) == clients * per_client
        for key, value in results.items():
            np.testing.assert_array_equal(value, expected[key])

    def test_coalesces_queued_requests_into_one_fused_forward(self):
        session = InferenceSession(_tiny_model(), max_batch=64)
        engine = BatchedEngine(session, max_wait_ms=50.0, autostart=False)
        futures = [engine.submit(_inputs(1, seed=i)) for i in range(6)]
        engine.start()
        for future in futures:
            assert future.result(timeout=30).shape == (1, 4)
        stats = engine.stats()
        engine.close()
        assert stats["batches"] == 1
        assert stats["samples"] == 6
        assert stats["mean_batch_rows"] == 6.0
        assert stats["requests"] == 6

    def test_mixed_request_sizes_agree_with_direct_to_float_tolerance(self):
        model = _tiny_model()
        direct = DirectEngine(InferenceSession(model, max_batch=64))
        engine = BatchedEngine(InferenceSession(model, max_batch=64),
                               max_wait_ms=50.0, autostart=False)
        requests = [_inputs(n, seed=10 + n) for n in (1, 3, 2)]
        futures = [engine.submit(x) for x in requests]
        engine.start()
        for x, future in zip(requests, futures):
            got = future.result(timeout=30)
            want = direct.predict(x)
            np.testing.assert_allclose(got, want, atol=1e-5)
            np.testing.assert_array_equal(got.argmax(-1), want.argmax(-1))
        engine.close()

    def test_heterogeneous_shapes_grouped_per_geometry(self):
        session = InferenceSession(Doubler(), strict_no_graph=False)
        engine = BatchedEngine(session, max_wait_ms=50.0, autostart=False)
        wide = np.arange(10, dtype=np.float32).reshape(2, 5)
        narrow = np.arange(6, dtype=np.float32).reshape(2, 3)
        futures = [engine.submit(wide), engine.submit(narrow)]
        engine.start()
        np.testing.assert_array_equal(futures[0].result(timeout=30), wide * 2)
        np.testing.assert_array_equal(futures[1].result(timeout=30), narrow * 2)
        engine.close()

    def test_queue_full_raises_429_material(self):
        engine = BatchedEngine(InferenceSession(_tiny_model()), queue_size=2,
                               autostart=False)
        engine.submit(_inputs(1))
        engine.submit(_inputs(1))
        with pytest.raises(QueueFull, match="retry"):
            engine.submit(_inputs(1))
        engine.close()

    def test_per_request_timeout(self):
        engine = BatchedEngine(InferenceSession(_tiny_model()), autostart=False)
        with pytest.raises(TimeoutError, match="did not answer"):
            engine.predict(_inputs(1), timeout=0.05)
        engine.close()

    def test_close_fails_queued_futures_with_clear_error(self):
        engine = BatchedEngine(InferenceSession(_tiny_model()), autostart=False)
        futures = [engine.submit(_inputs(1, seed=i)) for i in range(3)]
        engine.close()
        for future in futures:
            with pytest.raises(EngineClosed, match="shutting down"):
                future.result(timeout=5)
        with pytest.raises(EngineClosed):
            engine.submit(_inputs(1))
        engine.close()  # idempotent

    def test_close_finishes_inflight_batch_but_fails_queued(self):
        import time

        class Slow(Module):
            def forward(self, x):
                time.sleep(0.15)
                return x * 2

        session = InferenceSession(Slow(), strict_no_graph=False)
        engine = BatchedEngine(session, max_batch=1, max_wait_ms=0.0,
                               queue_size=64)
        first = engine.submit(np.ones((1, 2), dtype=np.float32))
        time.sleep(0.05)  # let the scheduler take `first` into flight
        queued = [engine.submit(np.ones((1, 2), dtype=np.float32))
                  for _ in range(5)]
        engine.close()
        # The batch in flight completes; everything still queued fails
        # instead of being served during shutdown.
        np.testing.assert_array_equal(
            first.result(timeout=5), np.full((1, 2), 2.0, dtype=np.float32))
        for future in queued:
            with pytest.raises(EngineClosed, match="shutting down"):
                future.result(timeout=5)

    def test_forward_errors_isolated_to_their_batch(self):
        session = InferenceSession(Exploder(), strict_no_graph=False)
        with BatchedEngine(session, max_wait_ms=1.0) as engine:
            with pytest.raises(ArithmeticError, match="kaboom"):
                engine.predict(_inputs(2), timeout=30)
            # The scheduler survives a failing forward and keeps serving.
            with pytest.raises(ArithmeticError, match="kaboom"):
                engine.predict(_inputs(1), timeout=30)

    def test_scheduler_survives_batch_assembly_failures(self, monkeypatch):
        """An error outside the forward (e.g. OOM in np.concatenate) must
        fail that batch's futures, not kill the scheduler silently."""
        engine = BatchedEngine(InferenceSession(Doubler(), strict_no_graph=False),
                               max_wait_ms=50.0, autostart=False)
        monkeypatch.setattr("repro.serve.batching.np.concatenate",
                            lambda *args, **kwargs: (_ for _ in ()).throw(
                                MemoryError("simulated OOM")))
        futures = [engine.submit(np.ones((1, 2), dtype=np.float32))
                   for _ in range(2)]
        engine.start()
        for future in futures:
            with pytest.raises(MemoryError, match="simulated"):
                future.result(timeout=5)
        # A single-request batch needs no concatenate — the scheduler lives on.
        np.testing.assert_array_equal(
            engine.predict(np.ones((1, 2), dtype=np.float32), timeout=5),
            np.full((1, 2), 2.0, dtype=np.float32))
        engine.close()

    def test_crashed_scheduler_fails_futures_and_closes(self, monkeypatch):
        engine = BatchedEngine(InferenceSession(Doubler(), strict_no_graph=False),
                               max_wait_ms=1.0, autostart=False)
        monkeypatch.setattr(engine, "_safe_run_batch",
                            lambda batch: (_ for _ in ()).throw(
                                RuntimeError("scheduler bug")))
        future = engine.submit(np.ones((1, 2), dtype=np.float32))
        engine.start()
        # The loop-level guard fails the in-flight batch, closes the engine
        # and drains the queue rather than stranding clients silently.
        with pytest.raises(RuntimeError, match="scheduler bug"):
            future.result(timeout=5)
        engine._thread.join(timeout=5)
        assert engine.stats()["closed"] is True
        with pytest.raises(EngineClosed):
            engine.submit(np.ones((1, 2), dtype=np.float32))

    def test_cancelled_requests_are_skipped(self):
        engine = BatchedEngine(InferenceSession(Doubler(), strict_no_graph=False),
                               max_wait_ms=50.0, autostart=False)
        cancelled = engine.submit(np.ones((1, 2), dtype=np.float32))
        live = engine.submit(np.full((1, 2), 3.0, dtype=np.float32))
        assert cancelled.cancel()
        engine.start()
        np.testing.assert_array_equal(live.result(timeout=30),
                                      np.full((1, 2), 6.0, dtype=np.float32))
        engine.close()
        assert cancelled.cancelled()

    def test_validates_constructor_and_inputs(self):
        session = InferenceSession(_tiny_model())
        with pytest.raises(ValueError, match="max_wait_ms"):
            BatchedEngine(session, max_wait_ms=-1)
        with pytest.raises(ValueError, match="queue_size"):
            BatchedEngine(session, queue_size=0)
        with BatchedEngine(session, max_wait_ms=1.0) as engine:
            with pytest.raises(ValueError, match="batched"):
                engine.submit(np.zeros(8, dtype=np.float32))

    def test_base_engine_is_abstract(self):
        engine = ServingEngine()
        with pytest.raises(NotImplementedError):
            engine.submit(_inputs(1))
        with pytest.raises(NotImplementedError):
            engine.stats()


class TestThreadLocalGradMode:
    def test_no_grad_exit_on_one_thread_cannot_reenable_another(self):
        """The race the engines exposed: concurrent forwards on different
        threads must not flip each other's gradient switch mid-flight."""
        from repro.tensor import no_grad
        from repro.tensor.engine import is_grad_enabled

        entered = threading.Event()
        release = threading.Event()
        observed = {}

        def inference_thread():
            with no_grad():
                entered.set()
                release.wait(5)
                observed["still_disabled"] = not is_grad_enabled()

        thread = threading.Thread(target=inference_thread)
        thread.start()
        assert entered.wait(5)
        with no_grad():  # enter+exit while the other thread is mid-block
            pass
        assert is_grad_enabled()  # this thread restored to enabled
        release.set()
        thread.join()
        assert observed["still_disabled"]


class TestWarmIdempotent:
    def test_double_warm_skips_redundant_forwards(self):
        model = Doubler()
        # compile=False: these tests pin dispatch-level forward counts, and
        # compilation would serve re-warms from the plan cache instead.
        session = InferenceSession(model, strict_no_graph=False, compile=False)
        assert session.warm(input_shape=(2,), batch_sizes=(4, 1)) is True
        first = model.forwards
        assert session.warm(input_shape=(2,), batch_sizes=(4, 1)) is True
        assert model.forwards == first  # idempotent: no redundant rebuild
        assert session.warm(input_shape=(2,), batch_sizes=(4, 1),
                            force=True) is True
        assert model.forwards == 2 * first
        session.warm(input_shape=(3,))  # a new shape does warm
        assert model.forwards == 2 * first + 1

    def test_concurrent_warms_run_once(self):
        model = Doubler()
        session = InferenceSession(model, strict_no_graph=False, compile=False)
        barrier = threading.Barrier(8)

        def warm():
            barrier.wait()
            session.warm(input_shape=(2,), batch_sizes=(4,))

        threads = [threading.Thread(target=warm) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert model.forwards == 1


class TestQueuedStatsSchema:
    """Every queued engine reports the schema ARCHITECTURE.md documents."""

    SHARED_KEYS = {"engine", "requests", "samples", "batches",
                   "mean_batch_rows", "queue_depth", "queue_size",
                   "max_batch", "max_wait_ms", "closed"}

    def test_batched_and_pool_share_the_queued_key_names(self, tmp_path):
        from repro.io import save_bundle
        from repro.serve import ProcessPoolEngine

        bundle = save_bundle(tmp_path / "model.npz", _tiny_model(),
                             info={"input_shape": [3, 8, 8]})
        batched = BatchedEngine(InferenceSession(_tiny_model(), max_batch=8),
                                max_wait_ms=0.5)
        pool = ProcessPoolEngine(InferenceSession(bundle, max_batch=8),
                                 workers=1, max_wait_ms=0.5)
        try:
            for engine in (batched, pool):
                engine.predict(_inputs(3), timeout=60)
            batched_stats, pool_stats = batched.stats(), pool.stats()
        finally:
            pool.close()
            batched.close()
        for stats in (batched_stats, pool_stats):
            assert self.SHARED_KEYS <= set(stats)
            assert stats["mean_batch_rows"] == 3.0
            assert stats["queue_depth"] == 0
            assert stats["requests"] == 1 and stats["samples"] == 3
        # The pool adds its multi-process detail on top of the shared schema.
        assert pool_stats["engine"] == "pool"
        assert pool_stats["workers"] == 1
        assert pool_stats["restarts"] == 0
        assert len(pool_stats["per_worker"]) == 1
        assert pool_stats["plan_cache"]["plans"] >= 1


class TestModelRouter:
    def _router(self):
        quad = Predictor(_tiny_model(seed=3), input_shape=(3, 8, 8))
        linear = Predictor(_tiny_model(seed=5, neuron_type="linear"),
                           input_shape=(3, 8, 8))
        return ModelRouter({"quad": quad, "linear": linear})

    def test_first_model_is_default(self):
        router = self._router()
        assert router.default_name == "quad"
        assert router.get() is router.get("quad")
        assert router.names() == ["quad", "linear"]
        assert "linear" in router and len(router) == 2

    def test_set_default_and_promote_on_add(self):
        router = self._router()
        router.set_default("linear")
        assert router.default is router.get("linear")
        router.add("third", router.get("quad"), default=True)
        assert router.default_name == "third"

    def test_unknown_model_lists_available(self):
        with pytest.raises(KeyError, match="quad"):
            self._router().get("nope")
        with pytest.raises(KeyError, match="available models: none"):
            ModelRouter().get()

    def test_invalid_names_rejected(self):
        router = ModelRouter()
        with pytest.raises(ValueError, match="URL segment"):
            router.add("a/b", object())
        with pytest.raises(ValueError):
            router.add("", object())

    def test_describe_and_stats_cover_every_model(self):
        router = self._router()
        description = router.describe()
        assert [model["name"] for model in description["models"]] == \
            ["quad", "linear"]
        assert [model["default"] for model in description["models"]] == \
            [True, False]
        assert description["default"] == "quad"
        assert set(router.stats()) == {"quad", "linear"}

    def test_close_closes_every_engine(self):
        router = self._router()
        router.close()
        for name in router.names():
            with pytest.raises(EngineClosed):
                router.get(name).predict_logits(_inputs(1))


@pytest.fixture
def multi_server():
    quad = Predictor(_tiny_model(seed=3), input_shape=(3, 8, 8),
                     engine="batched", max_wait_ms=1.0)
    linear = Predictor(_tiny_model(seed=5, neuron_type="linear"),
                       input_shape=(3, 8, 8))
    router = ModelRouter({"quad": quad, "linear": linear})
    server = make_server(router, port=0, quiet=True, request_timeout=30)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}", router
    server.shutdown()
    router.close()
    server.server_close()


def _post_json(url: str, payload: dict) -> dict:
    request = urllib.request.Request(url, data=json.dumps(payload).encode(),
                                     headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.load(response)


class TestHTTPMultiModel:
    def test_v1_models_lists_every_mounted_model(self, multi_server):
        base, _ = multi_server
        payload = json.load(urllib.request.urlopen(f"{base}/v1/models", timeout=30))
        assert [model["name"] for model in payload["models"]] == ["quad", "linear"]
        assert payload["default"] == "quad"
        engines = {model["name"]: model["engine"] for model in payload["models"]}
        assert engines == {"quad": "batched", "linear": "direct"}

    def test_v1_predict_routes_per_model(self, multi_server):
        base, router = multi_server
        x = _inputs(3)
        for name in ("quad", "linear"):
            response = _post_json(f"{base}/v1/models/{name}/predict",
                                  {"inputs": x.tolist()})
            assert response["model"] == name
            assert [r["class_index"] for r in response["predictions"]] == \
                router.get(name).predict(x).tolist()

    def test_v1_describe_single_model(self, multi_server):
        base, _ = multi_server
        payload = json.load(urllib.request.urlopen(
            f"{base}/v1/models/linear", timeout=30))
        assert payload["name"] == "linear"
        assert payload["engine"] == "direct"

    def test_legacy_shims_route_to_default_model(self, multi_server):
        base, router = multi_server
        health = json.load(urllib.request.urlopen(f"{base}/healthz", timeout=30))
        assert health["status"] == "ok"
        assert health["model_name"] == "quad"
        x = _inputs(2)
        response = _post_json(f"{base}/predict", {"inputs": x.tolist()})
        assert response["model"] == "quad"
        assert [r["class_index"] for r in response["predictions"]] == \
            router.get("quad").predict(x).tolist()

    def test_v1_stats_reports_scheduling_counters(self, multi_server):
        base, _ = multi_server
        _post_json(f"{base}/v1/models/quad/predict",
                   {"inputs": _inputs(2).tolist()})
        stats = json.load(urllib.request.urlopen(f"{base}/v1/stats", timeout=30))
        assert stats["models"]["quad"]["engine"] == "batched"
        assert stats["models"]["quad"]["requests"] >= 1
        assert stats["models"]["quad"]["samples"] >= 2
        assert stats["models"]["linear"]["engine"] == "direct"

    def test_url_encoded_model_names_resolve(self, multi_server):
        base, router = multi_server
        router.add("my model", router.get("linear"))
        x = _inputs(2)
        response = _post_json(f"{base}/v1/models/my%20model/predict",
                              {"inputs": x.tolist()})
        assert response["model"] == "my model"
        assert [r["class_index"] for r in response["predictions"]] == \
            router.get("linear").predict(x).tolist()
        described = json.load(urllib.request.urlopen(
            f"{base}/v1/models/my%20model", timeout=30))
        assert described["name"] == "my model"

    def test_unknown_model_404_lists_names(self, multi_server):
        base, _ = multi_server
        request = urllib.request.Request(
            f"{base}/v1/models/nope/predict",
            data=json.dumps({"inputs": _inputs(1).tolist()}).encode())
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 404
        assert "quad" in json.load(excinfo.value)["error"]

    def test_concurrent_storm_across_models_is_correct(self, multi_server):
        base, router = multi_server
        x = _inputs(2)
        expected = {name: router.get(name).predict(x).tolist()
                    for name in ("quad", "linear")}
        results, errors = [], []

        def hit(name):
            try:
                response = _post_json(f"{base}/v1/models/{name}/predict",
                                      {"inputs": x.tolist()})
                results.append(
                    (name, [r["class_index"] for r in response["predictions"]]))
            except Exception as error:  # noqa: BLE001 — collected for assertion
                errors.append(error)

        threads = [threading.Thread(target=hit, args=(name,))
                   for name in ("quad", "linear") * 6]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(results) == 12
        for name, classes in results:
            assert classes == expected[name]


class TestHTTPBackpressure:
    @pytest.fixture
    def jammed_server(self):
        """One-slot queue, no scheduler: requests time out (504) or bounce (429)."""
        session = InferenceSession(_tiny_model(), max_batch=8)
        engine = BatchedEngine(session, queue_size=1, autostart=False)
        predictor = Predictor(_tiny_model(), input_shape=(3, 8, 8), engine=engine)
        server = make_server(predictor, port=0, quiet=True, request_timeout=0.2)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        yield f"http://{host}:{port}", engine
        server.shutdown()
        engine.close()
        server.server_close()

    def _post_expecting_error(self, base, code):
        request = urllib.request.Request(
            f"{base}/predict",
            data=json.dumps({"inputs": _inputs(1).tolist()}).encode())
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == code
        return json.load(excinfo.value)["error"]

    def test_timeout_504_then_queue_full_429_then_drain_503(self, jammed_server):
        base, engine = jammed_server
        # The scheduler never runs: the first request occupies the only queue
        # slot until the server's 0.2s request timeout fires.
        assert "did not answer" in self._post_expecting_error(base, 504)
        # The slot is still occupied, so the next request bounces immediately.
        assert "queue is full" in self._post_expecting_error(base, 429)
        # Draining for shutdown turns further requests into 503s.
        engine.close()
        assert "closed" in self._post_expecting_error(base, 503)


class TestServeEntrypoint:
    def test_serve_runs_multi_model_and_drains_on_shutdown(self, tmp_path):
        from repro.io import save_bundle
        from repro.serve.http import serve

        info = {"normalization": {"mean": 0.0, "std": 1.0},
                "classes": ["a", "b", "c", "d"], "input_shape": [3, 8, 8]}
        quad = save_bundle(tmp_path / "quad.npz", _tiny_model(seed=3), info=info)
        linear = save_bundle(tmp_path / "lin.npz",
                             _tiny_model(seed=5, neuron_type="linear"), info=info)

        captured = {}
        done = threading.Event()

        def run():
            serve(models={"quad": quad, "linear": linear}, port=0, quiet=True,
                  engine="batched", max_wait_ms=1.0, default_model="linear",
                  ready=lambda server: (captured.update(server=server)))
            done.set()

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        for _ in range(100):
            if "server" in captured:
                break
            done.wait(0.05)
        server = captured["server"]
        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"
        payload = json.load(urllib.request.urlopen(f"{base}/v1/models", timeout=30))
        assert payload["default"] == "linear"
        assert {model["name"] for model in payload["models"]} == {"quad", "linear"}
        response = _post_json(f"{base}/v1/models/quad/predict",
                              {"inputs": _inputs(1).tolist()})
        assert response["count"] == 1

        server.shutdown()
        assert done.wait(10)
        # serve()'s finally-block drained the router: engines reject new work.
        with pytest.raises(EngineClosed):
            server.router.get("quad").predict_logits(_inputs(1))

    def test_serve_requires_a_model(self):
        from repro.serve.http import serve

        with pytest.raises(ValueError, match="name=bundle"):
            serve(models={})

    def test_serve_rejects_model_colliding_with_positional_bundle(self):
        from repro.serve.http import serve

        with pytest.raises(ValueError, match="collides"):
            serve("a.npz", models={"default": "b.npz"})


class TestCLIServeParsing:
    def test_model_specs_parsed(self):
        assert cli._parse_model_specs(["a=x.npz", "b=y.npz"]) == \
            {"a": "x.npz", "b": "y.npz"}

    def test_bad_model_spec_rejected(self, capsys):
        assert cli.main(["serve", "--model", "nonsense"]) == 1
        assert "NAME=BUNDLE" in capsys.readouterr().err

    def test_duplicate_model_name_rejected(self, capsys):
        assert cli.main(["serve", "--model", "a=x", "--model", "a=y"]) == 1
        assert "twice" in capsys.readouterr().err

    def test_serve_without_models_errors(self, capsys):
        assert cli.main(["serve"]) == 2
        assert "--model" in capsys.readouterr().err

    def test_bench_serving_gate_vacuous_combination_rejected(self, capsys, tmp_path):
        assert cli.main(["bench", "table1", "--cache-dir", str(tmp_path),
                         "--output", "", "--skip-serving",
                         "--min-serving-speedup", "2.0"]) == 2
        assert "vacuous" in capsys.readouterr().err


class TestBenchServing:
    def test_serving_benchmark_shape_and_gate(self):
        from repro import bench

        result = bench.serving_benchmarks(rounds=1, warmup=0, clients=4,
                                          requests_per_client=4)
        assert result["clients"] == 4
        assert result["direct_rps"] > 0 and result["batched_rps"] > 0
        assert "speedup" in result
        summary = {"serving": result}
        # The gate reads this summary shape; an impossible floor trips it.
        assert bench.check_serving_speedup(summary, 10_000.0)
        assert bench.check_serving_speedup({"serving": {}}, 1.0) == \
            ["serving benchmark missing from the summary"]
