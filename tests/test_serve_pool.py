"""ProcessPoolEngine: multi-process serving, worker death, determinism."""

import json
import os
import signal
import threading
import urllib.request

import numpy as np
import pytest

import repro
from repro import cli
from repro.io import save_bundle
from repro.models import SimpleCNN
from repro.parallel.worker import DEPTH_ENV
from repro.serve import (
    DirectEngine,
    EngineClosed,
    EngineError,
    InferenceSession,
    ProcessPoolEngine,
    make_engine,
    make_server,
)

INFO = {"normalization": {"mean": 0.0, "std": 1.0},
        "classes": ["cat", "dog", "ship", "truck"],
        "input_shape": [3, 8, 8]}


def _tiny_model(seed: int = 3) -> SimpleCNN:
    return SimpleCNN(num_classes=4, neuron_type="proposed", rank=2, base_width=4,
                     image_size=8, seed=seed)


def _inputs(count: int, seed: int = 0) -> np.ndarray:
    return np.random.default_rng(seed).standard_normal((count, 3, 8, 8)) \
        .astype(np.float32)


@pytest.fixture(scope="module")
def bundle_path(tmp_path_factory):
    return save_bundle(tmp_path_factory.mktemp("pool-bundle") / "model.npz",
                       _tiny_model(), info=INFO)


@pytest.fixture(scope="module")
def pool(bundle_path):
    """One shared 2-worker pool — spawning costs ~1 s, so tests share it.

    Tests may kill its workers (the engine respawns them) but must leave it
    serving; anything that closes an engine builds its own.
    """
    engine = ProcessPoolEngine(InferenceSession(bundle_path, max_batch=8),
                               workers=2, max_wait_ms=1.0)
    yield engine
    engine.close()


class TestPoolPredictions:
    def test_byte_identical_to_direct_engine(self, pool, bundle_path):
        direct = DirectEngine(InferenceSession(bundle_path, max_batch=8))
        for seed in range(3):
            inputs = _inputs(6, seed=seed)
            np.testing.assert_array_equal(pool.predict(inputs, timeout=60),
                                          direct.predict(inputs))

    def test_coalesces_concurrent_single_row_requests(self, pool):
        before = pool.stats()
        futures = [pool.submit(_inputs(1, seed=index)) for index in range(16)]
        for future in futures:
            assert future.result(timeout=60).shape == (1, 4)
        after = pool.stats()
        assert after["samples"] - before["samples"] == 16
        # The scheduler fused at least some of the burst (max_batch=8 rows).
        assert after["batches"] - before["batches"] < 16

    def test_oversized_request_is_chunked_by_the_worker_session(self, pool,
                                                                bundle_path):
        inputs = _inputs(19, seed=7)  # > max_batch=8: worker micro-batches
        direct = DirectEngine(InferenceSession(bundle_path, max_batch=8))
        np.testing.assert_array_equal(pool.predict(inputs, timeout=60),
                                      direct.predict(inputs))

    def test_parent_validates_batch_dimension(self, pool):
        with pytest.raises(ValueError, match="batched array"):
            pool.submit(np.zeros(3, dtype=np.float32))

    def test_remote_model_error_reports_worker_traceback(self, pool):
        bad = np.zeros((2, 5, 8, 8), dtype=np.float32)  # wrong channel count
        before = pool.stats()["restarts"]
        with pytest.raises(RuntimeError, match="worker traceback"):
            pool.predict(bad, timeout=60)
        # A model error is the request's fault: the worker survives, no retry.
        assert pool.stats()["restarts"] == before
        assert pool.predict(_inputs(2), timeout=60).shape == (2, 4)


class TestWorkerIdentity:
    def test_workers_record_depth_and_clamped_jobs(self, pool):
        stats = pool.stats()
        assert stats["engine"] == "pool"
        assert stats["workers"] == 2
        assert len(stats["per_worker"]) == 2
        for worker in stats["per_worker"]:
            assert worker["depth"] == 1  # REPRO_PARALLEL_DEPTH was exported
            assert worker["effective_jobs"] == 1  # nested fan-out is clamped
        pids = {worker["pid"] for worker in stats["per_worker"]}
        assert len(pids) == 2 and os.getpid() not in pids

    def test_workers_seeded_distinctly_and_deterministically(self, pool):
        from repro.parallel.seeding import derive_seed

        seeds = [worker["seed"] for worker in pool.stats()["per_worker"]]
        assert seeds == [derive_seed(0, "serve-pool", 0),
                         derive_seed(0, "serve-pool", 1)]

    def test_nested_pool_refused_inside_parallel_worker(self, bundle_path,
                                                        monkeypatch):
        monkeypatch.setenv(DEPTH_ENV, "1")
        with pytest.raises(EngineError, match="nested pools"):
            ProcessPoolEngine(InferenceSession(bundle_path, max_batch=8))

    def test_pool_requires_a_bundle_backed_session(self):
        with pytest.raises(EngineError, match="bundles loaded from disk"):
            ProcessPoolEngine(InferenceSession(_tiny_model(), max_batch=8))


class TestWorkerDeath:
    def test_sigkill_retries_once_on_a_respawned_worker(self, pool, bundle_path):
        direct = DirectEngine(InferenceSession(bundle_path, max_batch=8))
        before = pool.stats()["restarts"]
        victims = {worker.process.pid for worker in pool._workers}
        for worker in pool._workers:
            os.kill(worker.process.pid, signal.SIGKILL)
        # Every worker is dead; each shard hits the isolate-and-retry path:
        # broken pipe -> respawn -> the batch retried once on the fresh
        # worker succeeds, so clients never observe the crash.
        for seed in (11, 12, 13):
            result = pool.predict(_inputs(4, seed=seed), timeout=60)
            np.testing.assert_allclose(result,
                                       direct.predict(_inputs(4, seed=seed)),
                                       rtol=1e-5, atol=1e-6)
        stats = pool.stats()
        assert stats["restarts"] > before
        live = {worker.process.pid for worker in pool._workers if worker.alive}
        assert live and live.isdisjoint(victims)

    def test_unrespawnable_worker_fails_futures_with_engine_error(self, tmp_path):
        bundle = save_bundle(tmp_path / "doomed.npz", _tiny_model(), info=INFO)
        engine = ProcessPoolEngine(InferenceSession(bundle, max_batch=8),
                                   workers=1, max_wait_ms=0.0)
        try:
            os.kill(engine._workers[0].process.pid, signal.SIGKILL)
            os.unlink(bundle)  # the respawn attempt cannot reload the model
            with pytest.raises(EngineError, match="could not be respawned"):
                engine.predict(_inputs(2), timeout=60)
        finally:
            engine.close()
        with pytest.raises(EngineClosed):
            engine.submit(_inputs(1))


class TestPoolShutdown:
    def test_close_fails_queued_futures_with_engine_closed(self, bundle_path):
        engine = ProcessPoolEngine(InferenceSession(bundle_path, max_batch=8),
                                   workers=1, max_wait_ms=0.0, autostart=False)
        futures = [engine.submit(_inputs(2, seed=index)) for index in range(5)]
        engine.close(timeout=10)
        for future in futures:  # failed loudly, never stranded
            with pytest.raises(EngineClosed, match="shutting down"):
                future.result(timeout=10)

    def test_close_during_in_flight_batches_resolves_every_future(self,
                                                                  bundle_path):
        engine = ProcessPoolEngine(InferenceSession(bundle_path, max_batch=4),
                                   workers=1, max_wait_ms=0.0, autostart=False)
        futures = [engine.submit(_inputs(4, seed=index)) for index in range(8)]
        engine.start()  # the scheduler races close() over the backlog
        engine.close(timeout=10)
        outcomes = {"ok": 0, "closed": 0}
        for future in futures:
            try:
                assert future.result(timeout=10).shape == (4, 4)
                outcomes["ok"] += 1
            except EngineClosed:
                outcomes["closed"] += 1
        assert sum(outcomes.values()) == len(futures)
        assert engine.stats()["closed"] is True
        with pytest.raises(EngineClosed):
            engine.submit(_inputs(1))

    def test_close_is_idempotent_and_terminates_workers(self, bundle_path):
        engine = ProcessPoolEngine(InferenceSession(bundle_path, max_batch=8),
                                   workers=1)
        process = engine._workers[0].process
        engine.close()
        engine.close()
        assert process is None or not process.is_alive()
        assert all(not worker.alive for worker in engine._workers)


class TestPoolWiring:
    def test_make_engine_builds_a_pool(self, bundle_path):
        engine = make_engine("pool", InferenceSession(bundle_path, max_batch=8),
                             workers=1, max_wait_ms=1.0)
        try:
            assert isinstance(engine, ProcessPoolEngine)
            assert engine.workers == 1
            assert engine.predict(_inputs(2), timeout=60).shape == (2, 4)
        finally:
            engine.close()

    def test_repro_load_pool_roundtrip_with_warm_workers(self, bundle_path):
        with repro.load(bundle_path, engine="pool", workers=1, max_batch=8,
                        warm=True) as predictor:
            direct = repro.load(bundle_path, engine="direct", max_batch=8,
                                warm=False)
            inputs = _inputs(5, seed=2)
            np.testing.assert_array_equal(predictor.predict(inputs),
                                          direct.predict(inputs))
            stats = predictor.stats()
            assert stats["engine"] == "pool"
            # warm=True warmed every worker's own plan cache, and the
            # aggregated counters (not the parent's idle session) surface.
            assert stats["plan_cache"]["plans"] >= 1
            assert stats["per_worker"][0]["plan_cache"]["plans"] >= 1

    def test_http_server_over_a_pool_predictor(self, bundle_path):
        predictor = repro.load(bundle_path, engine="pool", workers=1,
                               max_batch=8, warm=False)
        direct = repro.load(bundle_path, engine="direct", max_batch=8,
                            warm=False)
        server = make_server({"pooled": predictor}, port=0, quiet=True)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]
            inputs = _inputs(3, seed=4)
            request = urllib.request.Request(
                f"http://{host}:{port}/v1/models/pooled/predict",
                data=json.dumps({"inputs": inputs.tolist()}).encode(),
                headers={"Content-Type": "application/json"})
            response = json.load(urllib.request.urlopen(request, timeout=60))
            assert [record["class_index"] for record in response["predictions"]] \
                == direct.predict(inputs).tolist()
            stats = json.load(urllib.request.urlopen(
                f"http://{host}:{port}/v1/stats", timeout=60))["models"]["pooled"]
            assert stats["engine"] == "pool"
            assert stats["restarts"] == 0
            assert stats["requests"] >= 1
        finally:
            server.shutdown()
            thread.join(10)
            server.server_close()
            predictor.close()

    def test_serve_mounts_models_on_separate_pools(self, bundle_path):
        """ModelRouter placement: one model on a pool, one on batched."""
        from repro.serve.http import serve

        captured = {}
        done = threading.Event()

        def run():
            serve(models={"hot": {"path": bundle_path, "engine": "pool",
                                  "workers": 1},
                          "cold": bundle_path},
                  port=0, quiet=True, engine="batched", max_wait_ms=1.0,
                  ready=lambda server: captured.update(server=server))
            done.set()

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        for _ in range(200):
            if "server" in captured:
                break
            done.wait(0.05)
        server = captured["server"]
        host, port = server.server_address[:2]
        payload = json.load(urllib.request.urlopen(
            f"http://{host}:{port}/v1/models", timeout=60))
        engines = {model["name"]: model["engine"] for model in payload["models"]}
        assert engines == {"hot": "pool", "cold": "batched"}
        server.shutdown()
        assert done.wait(15)

    def test_serve_rejects_unknown_model_spec_options(self):
        from repro.serve.http import serve

        with pytest.raises(ValueError, match="unknown"):
            serve(models={"m": {"path": "x.npz", "turbo": True}})

    def test_serve_model_spec_requires_a_path(self):
        from repro.serve.http import serve

        with pytest.raises(ValueError, match="'path'"):
            serve(models={"m": {"engine": "pool"}})


class TestCLIPoolParsing:
    def _capture_serve(self, monkeypatch):
        import repro.serve.http as http

        captured = {}

        def fake_serve(bundle_path=None, **kwargs):
            captured.update(kwargs, bundle_path=bundle_path)

        monkeypatch.setattr(http, "serve", fake_serve)
        return captured

    def test_engine_pool_and_workers_flags(self, monkeypatch):
        captured = self._capture_serve(monkeypatch)
        assert cli.main(["serve", "model.npz", "--engine", "pool",
                         "--workers", "3"]) == 0
        assert captured["engine"] == "pool"
        assert captured["workers"] == 3
        assert captured["bundle_path"] == "model.npz"

    def test_per_model_engine_and_worker_overrides(self, monkeypatch):
        captured = self._capture_serve(monkeypatch)
        assert cli.main(["serve", "--model", "hot=a.npz",
                         "--model", "cold=b.npz",
                         "--model-engine", "hot=pool",
                         "--model-workers", "hot=4"]) == 0
        assert captured["models"] == {
            "hot": {"path": "a.npz", "engine": "pool", "workers": 4},
            "cold": "b.npz"}

    def test_override_wraps_the_positional_bundle_as_default(self, monkeypatch):
        captured = self._capture_serve(monkeypatch)
        assert cli.main(["serve", "model.npz",
                         "--model-engine", "default=pool"]) == 0
        assert captured["bundle_path"] is None
        assert captured["models"] == {"default": {"path": "model.npz",
                                                  "engine": "pool"}}
        assert captured["default_model"] == "default"

    def test_override_naming_unmounted_model_rejected(self, capsys):
        assert cli.main(["serve", "--model", "a=x.npz",
                         "--model-engine", "b=pool"]) == 1
        assert "unmounted" in capsys.readouterr().err

    def test_bench_pool_gate_vacuous_combination_rejected(self, capsys, tmp_path):
        assert cli.main(["bench", "table1", "--cache-dir", str(tmp_path),
                         "--output", "", "--skip-pool",
                         "--min-pool-speedup", "1.0"]) == 2
        assert "vacuous" in capsys.readouterr().err


class TestBenchPool:
    def test_pool_benchmark_shape_and_gate(self):
        from repro import bench

        result = bench.pool_benchmarks(rounds=1, warmup=0, clients=2,
                                       requests_per_client=2,
                                       rows_per_request=4, worker_counts=(1,))
        assert result["worker_counts"] == [1]
        assert result["batched"]["rows_per_second"] > 0
        assert result["workers"]["1"]["rows_per_second"] > 0
        assert "speedup" in result
        summary = {"serving": {"pool": result}}
        assert bench.check_pool_speedup(summary, 0.0001) == []
        assert bench.check_pool_speedup(summary, 10_000.0)
        assert bench.check_pool_speedup({"serving": {}}, 1.0) == \
            ["pool benchmark missing from the summary"]

    def test_pool_scaling_curve_lands_under_serving(self):
        from repro.bench import build_summary

        summary = build_summary({}, {}, {}, scale="smoke", started=0.0,
                                serving={"speedup": 4.0},
                                pool={"speedup": 1.5, "worker_counts": [1]})
        assert summary["serving"]["pool"]["speedup"] == 1.5
        assert summary["serving"]["speedup"] == 4.0
