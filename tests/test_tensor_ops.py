"""Unit tests for the autograd Tensor: forward semantics and graph behaviour."""

import numpy as np
import pytest

from repro.tensor import Tensor, no_grad, is_grad_enabled, unbroadcast


class TestConstruction:
    def test_from_list(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)
        assert np.issubdtype(t.dtype, np.floating)

    def test_int_input_is_cast_to_float(self):
        t = Tensor(np.array([1, 2, 3]))
        assert np.issubdtype(t.dtype, np.floating)

    def test_float64_preserved(self):
        t = Tensor(np.zeros(3, dtype=np.float64))
        assert t.dtype == np.float64

    def test_zeros_ones(self):
        assert np.all(Tensor.zeros(2, 3).data == 0)
        assert np.all(Tensor.ones(4).data == 1)
        assert Tensor.zeros(2, 3).shape == (2, 3)

    def test_randn_with_seed_is_deterministic(self):
        a = Tensor.randn(5, rng=np.random.default_rng(0))
        b = Tensor.randn(5, rng=np.random.default_rng(0))
        np.testing.assert_allclose(a.data, b.data)

    def test_repr_mentions_requires_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))
        assert "requires_grad" not in repr(Tensor([1.0]))

    def test_detach_shares_data_but_no_grad(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        assert d.data is t.data

    def test_len_and_size(self):
        t = Tensor(np.zeros((4, 5)))
        assert len(t) == 4
        assert t.size == 20
        assert t.ndim == 2


class TestArithmetic:
    def setup_method(self):
        self.rng = np.random.default_rng(0)

    def test_add(self):
        a, b = Tensor([1.0, 2.0]), Tensor([3.0, 4.0])
        np.testing.assert_allclose((a + b).data, [4.0, 6.0])

    def test_add_scalar(self):
        np.testing.assert_allclose((Tensor([1.0, 2.0]) + 1.5).data, [2.5, 3.5])
        np.testing.assert_allclose((1.5 + Tensor([1.0, 2.0])).data, [2.5, 3.5])

    def test_sub_and_rsub(self):
        a = Tensor([5.0, 3.0])
        np.testing.assert_allclose((a - 1.0).data, [4.0, 2.0])
        np.testing.assert_allclose((10.0 - a).data, [5.0, 7.0])

    def test_mul_div(self):
        a = Tensor([2.0, 4.0])
        np.testing.assert_allclose((a * 3).data, [6.0, 12.0])
        np.testing.assert_allclose((a / 2).data, [1.0, 2.0])
        np.testing.assert_allclose((8.0 / a).data, [4.0, 2.0])

    def test_neg_pow(self):
        a = Tensor([2.0, -3.0])
        np.testing.assert_allclose((-a).data, [-2.0, 3.0])
        np.testing.assert_allclose((a ** 2).data, [4.0, 9.0])

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([2.0]) ** Tensor([2.0])

    def test_matmul_2d(self):
        a = self.rng.standard_normal((3, 4))
        b = self.rng.standard_normal((4, 5))
        np.testing.assert_allclose((Tensor(a) @ Tensor(b)).data, a @ b, rtol=1e-5)

    def test_matmul_batched(self):
        a = self.rng.standard_normal((2, 3, 4))
        b = self.rng.standard_normal((2, 4, 5))
        np.testing.assert_allclose((Tensor(a) @ Tensor(b)).data, a @ b, rtol=1e-5)

    def test_matmul_vector(self):
        a = self.rng.standard_normal((3, 4))
        v = self.rng.standard_normal(4)
        np.testing.assert_allclose((Tensor(a) @ Tensor(v)).data, a @ v, rtol=1e-5)

    def test_broadcasting_add(self):
        a = Tensor(np.ones((2, 3)))
        b = Tensor(np.arange(3, dtype=np.float32))
        assert (a + b).shape == (2, 3)

    def test_maximum(self):
        a, b = Tensor([1.0, 5.0]), Tensor([3.0, 2.0])
        np.testing.assert_allclose(a.maximum(b).data, [3.0, 5.0])

    def test_clip(self):
        a = Tensor([-2.0, 0.5, 3.0])
        np.testing.assert_allclose(a.clip(-1.0, 1.0).data, [-1.0, 0.5, 1.0])

    def test_abs_sqrt_exp_log(self):
        a = Tensor([4.0])
        np.testing.assert_allclose(a.sqrt().data, [2.0])
        np.testing.assert_allclose(Tensor([-3.0]).abs().data, [3.0])
        np.testing.assert_allclose(Tensor([0.0]).exp().data, [1.0])
        np.testing.assert_allclose(Tensor([1.0]).log().data, [0.0])

    def test_activation_values(self):
        x = Tensor([-1.0, 0.0, 2.0])
        np.testing.assert_allclose(x.relu().data, [0.0, 0.0, 2.0])
        np.testing.assert_allclose(x.tanh().data, np.tanh(x.data), rtol=1e-6)
        np.testing.assert_allclose(x.sigmoid().data, 1 / (1 + np.exp(-x.data)), rtol=1e-6)


class TestReductionsAndShapes:
    def setup_method(self):
        self.rng = np.random.default_rng(1)
        self.x = self.rng.standard_normal((3, 4, 5))

    def test_sum_axes(self):
        t = Tensor(self.x)
        np.testing.assert_allclose(t.sum().data, self.x.sum(), rtol=1e-5)
        np.testing.assert_allclose(t.sum(axis=1).data, self.x.sum(axis=1), rtol=1e-5)
        np.testing.assert_allclose(t.sum(axis=(0, 2), keepdims=True).data,
                                   self.x.sum(axis=(0, 2), keepdims=True), rtol=1e-5)

    def test_mean_var(self):
        t = Tensor(self.x)
        np.testing.assert_allclose(t.mean(axis=-1).data, self.x.mean(axis=-1), rtol=1e-5)
        np.testing.assert_allclose(t.var(axis=0).data, self.x.var(axis=0), rtol=1e-4)

    def test_max_min(self):
        t = Tensor(self.x)
        np.testing.assert_allclose(t.max(axis=2).data, self.x.max(axis=2), rtol=1e-6)
        np.testing.assert_allclose(t.min().data, self.x.min(), rtol=1e-6)

    def test_reshape_flatten(self):
        t = Tensor(self.x)
        assert t.reshape(12, 5).shape == (12, 5)
        assert t.reshape((3, 20)).shape == (3, 20)
        assert t.flatten(start_dim=1).shape == (3, 20)

    def test_transpose_and_T(self):
        t = Tensor(self.x)
        assert t.transpose(2, 0, 1).shape == (5, 3, 4)
        assert Tensor(np.zeros((2, 7))).T.shape == (7, 2)
        assert t.swapaxes(0, 2).shape == (5, 4, 3)

    def test_expand_squeeze(self):
        t = Tensor(np.zeros((3, 4)))
        assert t.expand_dims(1).shape == (3, 1, 4)
        assert t.expand_dims(1).squeeze(1).shape == (3, 4)

    def test_getitem(self):
        t = Tensor(self.x)
        np.testing.assert_allclose(t[1].data, self.x[1])
        np.testing.assert_allclose(t[:, 2:4].data, self.x[:, 2:4])
        index = np.array([0, 2])
        np.testing.assert_allclose(t[index].data, self.x[index])

    def test_pad(self):
        t = Tensor(np.ones((2, 2)))
        padded = t.pad(((1, 1), (0, 2)), constant_value=5.0)
        assert padded.shape == (4, 4)
        assert padded.data[0, 0] == 5.0

    def test_cat_stack(self):
        a, b = Tensor(np.ones((2, 3))), Tensor(np.zeros((2, 3)))
        assert Tensor.cat([a, b], axis=0).shape == (4, 3)
        assert Tensor.cat([a, b], axis=1).shape == (2, 6)
        assert Tensor.stack([a, b], axis=0).shape == (2, 2, 3)

    def test_item(self):
        assert Tensor([3.5]).item() == pytest.approx(3.5)


class TestAutogradMechanics:
    def test_backward_requires_grad_error(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_nonscalar_needs_grad(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2).backward()

    def test_simple_chain(self):
        x = Tensor([2.0], requires_grad=True)
        y = (x * 3 + 1) ** 2
        y.backward()
        # dy/dx = 2*(3x+1)*3 = 42 at x=2
        np.testing.assert_allclose(x.grad, [42.0], rtol=1e-5)

    def test_gradient_accumulation_across_backwards(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2).backward()
        (x * 2).backward()
        np.testing.assert_allclose(x.grad, [4.0])

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2).backward()
        x.zero_grad()
        assert x.grad is None

    def test_broadcast_gradient_shape(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        (a * b).sum().backward()
        assert a.grad.shape == (2, 3)
        assert b.grad.shape == (3,)
        np.testing.assert_allclose(b.grad, [2.0, 2.0, 2.0])

    def test_shared_subexpression(self):
        x = Tensor([3.0], requires_grad=True)
        y = x * x
        z = y + y
        z.backward()
        np.testing.assert_allclose(x.grad, [12.0])

    def test_no_grad_blocks_graph(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2
        assert not y.requires_grad
        assert is_grad_enabled()

    def test_no_grad_restores_state_on_exception(self):
        try:
            with no_grad():
                raise ValueError("boom")
        except ValueError:
            pass
        assert is_grad_enabled()

    def test_non_requires_grad_inputs_produce_no_graph(self):
        a, b = Tensor([1.0]), Tensor([2.0])
        c = a + b
        assert not c.requires_grad
        assert c._backward is None


class TestUnbroadcast:
    def test_identity(self):
        grad = np.ones((2, 3))
        assert unbroadcast(grad, (2, 3)).shape == (2, 3)

    def test_sum_leading_dims(self):
        grad = np.ones((4, 2, 3))
        np.testing.assert_allclose(unbroadcast(grad, (2, 3)), np.full((2, 3), 4.0))

    def test_sum_size_one_dims(self):
        grad = np.ones((2, 3))
        np.testing.assert_allclose(unbroadcast(grad, (1, 3)), np.full((1, 3), 2.0))

    def test_scalar_target(self):
        grad = np.ones((2, 3))
        np.testing.assert_allclose(unbroadcast(grad, ()), 6.0)
