"""Tests for the standard layers: dense, conv, norm, pooling, dropout, embedding, losses."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor


RNG = np.random.default_rng(0)


class TestLinear:
    def test_output_matches_manual(self):
        layer = nn.Linear(4, 3, rng=np.random.default_rng(1))
        x = RNG.standard_normal((5, 4)).astype(np.float32)
        out = layer(Tensor(x))
        expected = x @ layer.weight.data.T + layer.bias.data
        np.testing.assert_allclose(out.data, expected, rtol=1e-5)

    def test_no_bias(self):
        layer = nn.Linear(4, 3, bias=False, rng=np.random.default_rng(1))
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_3d_input(self):
        layer = nn.Linear(4, 6, rng=np.random.default_rng(1))
        out = layer(Tensor(RNG.standard_normal((2, 7, 4)).astype(np.float32)))
        assert out.shape == (2, 7, 6)

    def test_repr(self):
        assert "in=4" in repr(nn.Linear(4, 3, rng=np.random.default_rng(0)))


class TestConv2d:
    def test_output_shape(self):
        layer = nn.Conv2d(3, 8, 3, stride=2, padding=1, rng=np.random.default_rng(2))
        out = layer(Tensor(RNG.standard_normal((2, 3, 8, 8)).astype(np.float32)))
        assert out.shape == (2, 8, 4, 4)

    def test_parameter_count(self):
        layer = nn.Conv2d(3, 8, 3, rng=np.random.default_rng(2))
        assert layer.num_parameters() == 8 * 3 * 9 + 8

    def test_backward_produces_gradients(self):
        layer = nn.Conv2d(2, 4, 3, padding=1, rng=np.random.default_rng(3))
        out = layer(Tensor(RNG.standard_normal((1, 2, 5, 5)).astype(np.float32)))
        out.sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None


class TestPoolingLayers:
    def test_max_pool_module(self):
        layer = nn.MaxPool2d(2)
        out = layer(Tensor(RNG.standard_normal((1, 2, 6, 6)).astype(np.float32)))
        assert out.shape == (1, 2, 3, 3)

    def test_avg_pool_module(self):
        layer = nn.AvgPool2d(3, stride=3)
        out = layer(Tensor(np.ones((1, 2, 6, 6), dtype=np.float32)))
        np.testing.assert_allclose(out.data, 1.0)

    def test_global_avg_pool(self):
        out = nn.GlobalAvgPool2d()(Tensor(np.ones((2, 5, 4, 4), dtype=np.float32)))
        assert out.shape == (2, 5)

    def test_flatten(self):
        out = nn.Flatten()(Tensor(np.zeros((3, 2, 4, 4), dtype=np.float32)))
        assert out.shape == (3, 32)


class TestDropoutLayer:
    def test_training_vs_eval(self):
        layer = nn.Dropout(0.5, rng=np.random.default_rng(4))
        x = Tensor(np.ones((20, 20), dtype=np.float32))
        layer.train()
        assert float((layer(x).data == 0).mean()) > 0.2
        layer.eval()
        np.testing.assert_allclose(layer(x).data, 1.0)


class TestEmbedding:
    def test_lookup(self):
        layer = nn.Embedding(10, 4, rng=np.random.default_rng(5))
        ids = np.array([[1, 2], [3, 4]])
        out = layer(ids)
        assert out.shape == (2, 2, 4)
        np.testing.assert_allclose(out.data[0, 0], layer.weight.data[1])

    def test_padding_idx_zeroed(self):
        layer = nn.Embedding(10, 4, rng=np.random.default_rng(5), padding_idx=0)
        np.testing.assert_allclose(layer.weight.data[0], 0.0)

    def test_gradients_accumulate_per_token(self):
        layer = nn.Embedding(6, 3, rng=np.random.default_rng(6))
        out = layer(np.array([[1, 1, 2]]))
        out.sum().backward()
        # Token 1 appears twice, so its gradient should be twice token 2's.
        np.testing.assert_allclose(layer.weight.grad[1], 2 * layer.weight.grad[2], rtol=1e-6)


class TestBatchNorm:
    def test_training_normalizes_batch(self):
        layer = nn.BatchNorm2d(3)
        x = RNG.standard_normal((8, 3, 5, 5)).astype(np.float32) * 4 + 2
        out = layer(Tensor(x))
        assert abs(float(out.data.mean())) < 1e-4
        assert float(out.data.std()) == pytest.approx(1.0, abs=0.05)

    def test_running_stats_updated(self):
        layer = nn.BatchNorm2d(2, momentum=0.5)
        x = np.ones((4, 2, 3, 3), dtype=np.float32) * 10
        layer(Tensor(x))
        assert np.all(layer._buffers["running_mean"] > 0)

    def test_eval_uses_running_stats(self):
        layer = nn.BatchNorm2d(2)
        x = RNG.standard_normal((16, 2, 4, 4)).astype(np.float32)
        for _ in range(20):
            layer(Tensor(x))
        layer.eval()
        out_eval = layer(Tensor(x))
        layer.train()
        out_train = layer(Tensor(x))
        np.testing.assert_allclose(out_eval.data, out_train.data, atol=0.2)

    def test_input_rank_validation(self):
        with pytest.raises(ValueError):
            nn.BatchNorm2d(2)(Tensor(np.zeros((2, 2))))
        with pytest.raises(ValueError):
            nn.BatchNorm1d(2)(Tensor(np.zeros((2, 2, 2, 2))))

    def test_batchnorm1d(self):
        layer = nn.BatchNorm1d(4)
        out = layer(Tensor(RNG.standard_normal((16, 4)).astype(np.float32) * 3))
        assert abs(float(out.data.mean())) < 1e-4


class TestLayerNorm:
    def test_normalizes_last_dim(self):
        layer = nn.LayerNorm(8)
        x = RNG.standard_normal((2, 5, 8)).astype(np.float32) * 3 + 1
        out = layer(Tensor(x))
        np.testing.assert_allclose(out.data.mean(axis=-1), 0.0, atol=1e-4)
        np.testing.assert_allclose(out.data.std(axis=-1), 1.0, atol=1e-2)

    def test_affine_parameters_trainable(self):
        layer = nn.LayerNorm(4)
        assert len(layer.parameters()) == 2


class TestActivationsModules:
    @pytest.mark.parametrize("module,reference", [
        (nn.ReLU(), lambda x: np.maximum(x, 0)),
        (nn.Sigmoid(), lambda x: 1 / (1 + np.exp(-x))),
        (nn.Tanh(), np.tanh),
        (nn.SiLU(), lambda x: x / (1 + np.exp(-x))),
        (nn.LeakyReLU(0.2), lambda x: np.where(x > 0, x, 0.2 * x)),
    ])
    def test_matches_reference(self, module, reference):
        x = RNG.standard_normal((3, 4)).astype(np.float64)
        np.testing.assert_allclose(module(Tensor(x)).data, reference(x), rtol=1e-5, atol=1e-6)

    def test_softmax_module(self):
        out = nn.Softmax(axis=-1)(Tensor(RNG.standard_normal((2, 5))))
        np.testing.assert_allclose(out.data.sum(axis=-1), 1.0, rtol=1e-5)

    def test_gelu_module(self):
        out = nn.GELU()(Tensor(np.array([0.0, 10.0])))
        np.testing.assert_allclose(out.data, [0.0, 10.0], atol=1e-4)


class TestLosses:
    def test_cross_entropy_uniform_logits(self):
        loss = nn.CrossEntropyLoss()(Tensor(np.zeros((4, 10))), np.arange(4) % 10)
        assert float(loss.data) == pytest.approx(np.log(10), rel=1e-4)

    def test_label_smoothing_loss(self):
        loss = nn.LabelSmoothingLoss(0.1)(Tensor(np.zeros((4, 10))), np.zeros(4, dtype=int))
        assert float(loss.data) == pytest.approx(np.log(10), rel=1e-4)

    def test_mse_module(self):
        loss = nn.MSELoss()(Tensor(np.array([2.0])), np.array([0.0]))
        assert float(loss.data) == pytest.approx(4.0)

    def test_init_helpers_shapes(self):
        rng = np.random.default_rng(0)
        assert nn.init.kaiming_normal((8, 4, 3, 3), rng).shape == (8, 4, 3, 3)
        assert nn.init.xavier_uniform((5, 7), rng).shape == (5, 7)
        q = nn.init.orthogonal((10, 3), rng)
        np.testing.assert_allclose(q.T @ q, np.eye(3), atol=1e-5)
        q_gained = nn.init.orthogonal((10, 3), rng, gain=2.0)
        np.testing.assert_allclose(q_gained.T @ q_gained, 4 * np.eye(3), atol=1e-4)
