"""Tests for the quadratic-matrix decomposition utilities (Sec. III-A)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.quadratic import (
    QuadraticDecomposition,
    best_rank_k_error,
    eigendecompose,
    frobenius_error,
    is_symmetric,
    reconstruct,
    symmetrize,
    top_k_truncation,
)


def _random_matrix(n, seed=0):
    return np.random.default_rng(seed).standard_normal((n, n))


class TestSymmetrize:
    def test_result_is_symmetric(self):
        m = _random_matrix(6)
        assert is_symmetric(symmetrize(m))

    def test_symmetric_input_unchanged(self):
        m = _random_matrix(5)
        sym = symmetrize(m)
        np.testing.assert_allclose(symmetrize(sym), sym)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            symmetrize(np.zeros((3, 4)))

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=2, max_value=8), st.integers(min_value=0, max_value=10_000))
    def test_lemma1_quadratic_form_preserved(self, n, seed):
        """Lemma 1: xᵀMx == xᵀ((M+Mᵀ)/2)x for every x."""
        rng = np.random.default_rng(seed)
        matrix = rng.standard_normal((n, n))
        x = rng.standard_normal(n)
        original = x @ matrix @ x
        symmetric = x @ symmetrize(matrix) @ x
        assert original == pytest.approx(symmetric, rel=1e-9, abs=1e-9)


class TestEigendecomposition:
    def test_reconstruction_full_rank(self):
        m = symmetrize(_random_matrix(7, seed=1))
        values, vectors = eigendecompose(m)
        np.testing.assert_allclose((vectors * values) @ vectors.T, m, atol=1e-8)

    def test_sorted_by_magnitude(self):
        values, _ = eigendecompose(_random_matrix(10, seed=2))
        magnitudes = np.abs(values)
        assert np.all(magnitudes[:-1] >= magnitudes[1:] - 1e-12)

    def test_eigenvectors_orthonormal(self):
        _, vectors = eigendecompose(_random_matrix(8, seed=3))
        np.testing.assert_allclose(vectors.T @ vectors, np.eye(8), atol=1e-8)

    def test_asymmetric_input_handled_via_lemma1(self):
        m = _random_matrix(5, seed=4)
        values, vectors = eigendecompose(m)
        x = np.random.default_rng(0).standard_normal(5)
        full = (x @ vectors) ** 2 @ values
        assert full == pytest.approx(x @ m @ x, rel=1e-8)


class TestTopKTruncation:
    def test_shapes(self):
        values, vectors = eigendecompose(_random_matrix(9, seed=5))
        lam_k, q_k = top_k_truncation(values, vectors, 3)
        assert lam_k.shape == (3,)
        assert q_k.shape == (9, 3)

    def test_invalid_rank(self):
        values, vectors = eigendecompose(_random_matrix(4, seed=6))
        with pytest.raises(ValueError):
            top_k_truncation(values, vectors, 0)
        with pytest.raises(ValueError):
            top_k_truncation(values, vectors, 5)

    def test_full_rank_is_exact(self):
        m = symmetrize(_random_matrix(6, seed=7))
        decomposition = QuadraticDecomposition.from_matrix(m, 6)
        assert decomposition.residual_error == pytest.approx(0.0, abs=1e-7)

    def test_error_decreases_with_rank(self):
        m = symmetrize(_random_matrix(10, seed=8))
        errors = [QuadraticDecomposition.from_matrix(m, k).residual_error
                  for k in range(1, 11)]
        assert all(a >= b - 1e-9 for a, b in zip(errors, errors[1:]))

    def test_matches_eckart_young_bound(self):
        m = symmetrize(_random_matrix(8, seed=9))
        for k in (1, 3, 5):
            decomposition = QuadraticDecomposition.from_matrix(m, k)
            assert decomposition.residual_error == pytest.approx(best_rank_k_error(m, k),
                                                                 rel=1e-6)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=3, max_value=8), st.integers(min_value=0, max_value=10_000))
    def test_truncation_beats_random_rank_k(self, n, seed):
        """Eckart–Young: the top-k eigen truncation is at least as good as a random rank-k."""
        rng = np.random.default_rng(seed)
        m = symmetrize(rng.standard_normal((n, n)))
        k = rng.integers(1, n)
        optimal = QuadraticDecomposition.from_matrix(m, int(k))
        random_basis, _ = np.linalg.qr(rng.standard_normal((n, int(k))))
        random_approx = random_basis @ random_basis.T @ m @ random_basis @ random_basis.T
        assert optimal.residual_error <= frobenius_error(m, random_approx) + 1e-8


class TestQuadraticDecompositionObject:
    def test_evaluate_matches_reconstructed_form(self):
        m = symmetrize(_random_matrix(7, seed=10))
        decomposition = QuadraticDecomposition.from_matrix(m, 4)
        x = np.random.default_rng(1).standard_normal(7)
        reconstructed = reconstruct(decomposition.lambda_k, decomposition.q_k)
        assert decomposition.evaluate(x) == pytest.approx(x @ reconstructed @ x, rel=1e-8)

    def test_evaluate_batched(self):
        m = symmetrize(_random_matrix(5, seed=11))
        decomposition = QuadraticDecomposition.from_matrix(m, 2)
        batch = np.random.default_rng(2).standard_normal((6, 5))
        values = decomposition.evaluate(batch)
        assert values.shape == (6,)

    def test_intermediate_features_shape(self):
        decomposition = QuadraticDecomposition.from_matrix(_random_matrix(6, seed=12), 3)
        features = decomposition.intermediate_features(np.ones(6))
        assert features.shape == (3,)
        assert decomposition.rank == 3
        assert decomposition.input_dim == 6

    def test_projection_identity_eq7(self):
        """xᵀQΛQᵀx must equal (Qᵀx)ᵀ Λ (Qᵀx) — the identity behind Eq. (7)/(8)."""
        m = symmetrize(_random_matrix(9, seed=13))
        decomposition = QuadraticDecomposition.from_matrix(m, 5)
        x = np.random.default_rng(3).standard_normal(9)
        f = decomposition.intermediate_features(x)
        direct = f @ np.diag(decomposition.lambda_k) @ f
        assert decomposition.evaluate(x) == pytest.approx(direct, rel=1e-10)
