"""Trace-and-replay inference compiler: tracing, fusion, arena, plan cache."""

import numpy as np
import pytest

import repro.tensor.engine as engine
from repro.models import CifarResNet, MLPClassifier, SimpleCNN, Transformer
from repro.models.resnet import ResNet18
from repro.serve import InferenceSession
from repro.tensor import Tensor, apply_op, graph_nodes_created, no_grad
from repro.tensor.plan import (
    FALLBACK,
    PlanCache,
    _ComposedStep,
    compile_forward,
    compile_plan,
    plan_key,
)
from repro.tensor.trace import TraceError, record_trace


def _float_inputs(batch: int, shape: tuple, seed: int = 0) -> np.ndarray:
    return np.random.default_rng(seed).standard_normal((batch, *shape)) \
        .astype(np.float32)


# Small configurations of every servable float-input zoo model.
ZOO = {
    "simple_cnn": (lambda: SimpleCNN(num_classes=4, neuron_type="proposed",
                                     rank=2, base_width=4, image_size=8,
                                     seed=0),
                   (3, 8, 8)),
    "mlp_classifier": (lambda: MLPClassifier(in_features=48, num_classes=5,
                                             neuron_type="proposed", seed=0),
                       (48,)),
    "cifar_resnet": (lambda: CifarResNet(depth=8, num_classes=4,
                                         neuron_type="proposed", rank=2,
                                         base_width=4, seed=0),
                     (3, 8, 8)),
    "resnet18": (lambda: ResNet18(num_classes=4, neuron_type="proposed",
                                  rank=2, base_width=8, seed=0),
                 (3, 16, 16)),
}


class TestZooModelReplay:
    @pytest.mark.parametrize("name", sorted(ZOO))
    def test_replay_byte_identical_across_batch_sizes(self, name):
        build, shape = ZOO[name]
        model = build().eval()
        for batch in (2, 5):
            x = _float_inputs(batch, shape, seed=batch)
            plan, traced_out = compile_forward(model, x)
            assert plan is not None, f"{name} failed to compile"
            with no_grad():
                expected = model(Tensor(x)).data
            assert traced_out.shape == expected.shape
            assert traced_out.dtype == expected.dtype
            assert traced_out.tobytes() == expected.tobytes()
            replayed = plan.replay(x)
            assert replayed.shape == expected.shape
            assert replayed.dtype == expected.dtype
            assert replayed.tobytes() == expected.tobytes()

    def test_transformer_falls_back_but_dispatch_still_works(self):
        model = Transformer(src_vocab_size=11, tgt_vocab_size=13, model_dim=16,
                            num_heads=2, num_layers=1, hidden_dim=32,
                            max_len=8, seed=0).eval()
        src = np.array([[1, 2, 3, 0], [4, 5, 0, 0]], dtype=np.int64)
        tgt = np.array([[1, 6, 0], [2, 7, 8]], dtype=np.int64)
        plan, out = compile_forward(model, src, tgt)
        assert plan is None  # int token ids cannot become trace inputs
        assert out is None
        with no_grad():
            logits = model(src, tgt)
        assert logits.shape == (2, 3, 13)

    def test_replay_allocates_no_graph_nodes_and_no_tensors(self):
        build, shape = ZOO["simple_cnn"]
        model = build().eval()
        x = _float_inputs(3, shape)
        plan, _ = compile_forward(model, x)
        assert plan is not None

        created = 0
        original_init = Tensor.__init__

        def counting_init(self, *args, **kwargs):
            nonlocal created
            created += 1
            original_init(self, *args, **kwargs)

        nodes_before = graph_nodes_created()
        Tensor.__init__ = counting_init
        try:
            plan.replay(x)
        finally:
            Tensor.__init__ = original_init
        assert graph_nodes_created() == nodes_before
        assert created == 0


class TestFusionAndArena:
    def test_elementwise_chain_fuses_into_one_step(self):
        def forward(x):
            return ((x * 2.0 + 1.0).relu()).sum()

        x = _float_inputs(2, (5,))
        trace = record_trace(forward, x)
        plan = compile_plan(trace)
        composed = [s for s in plan.steps if isinstance(s, _ComposedStep)]
        assert len(composed) == 1
        assert composed[0].name == "fused(mul+add+relu)"
        assert plan.fused_chains == 1
        assert plan.fused_ops == 3
        with no_grad():
            expected = forward(Tensor(x)).data
        assert plan.replay(x).tobytes() == expected.tobytes()

    def test_multi_consumer_intermediate_breaks_the_chain(self):
        def forward(x):
            y = x + 1.0
            return (y * y).sum()  # y has two consumers → must materialize

        x = _float_inputs(2, (4,))
        plan = compile_plan(record_trace(forward, x))
        assert plan.fused_chains == 0
        with no_grad():
            expected = forward(Tensor(x)).data
        assert plan.replay(x).tobytes() == expected.tobytes()

    def test_multi_consumer_chain_root_still_fuses_downstream(self):
        def forward(x):
            y = x + 1.0
            return (y.relu() * y).sum()  # add breaks; relu+mul still fuse

        x = _float_inputs(2, (4,))
        plan = compile_plan(record_trace(forward, x))
        composed = [s for s in plan.steps if isinstance(s, _ComposedStep)]
        assert [s.name for s in composed] == ["fused(relu+mul)"]
        with no_grad():
            expected = forward(Tensor(x)).data
        assert plan.replay(x).tobytes() == expected.tobytes()

    def test_zoo_models_fuse_batchnorm_activation_chains(self):
        build, shape = ZOO["cifar_resnet"]
        plan, _ = compile_forward(build().eval(), _float_inputs(2, shape))
        assert plan.fused_chains >= 1
        assert plan.fused_ops >= 2 * plan.fused_chains
        assert plan.arena_bytes > 0

    def test_arena_buffers_are_reused_across_replays(self):
        def forward(x):
            return ((x * 3.0).tanh() + 0.5).sum()

        x = _float_inputs(2, (6,))
        plan = compile_plan(record_trace(forward, x))
        composed = [s for s in plan.steps if isinstance(s, _ComposedStep)]
        assert composed
        buffer_before = composed[0].buffer
        first = plan.replay(x)
        assert composed[0].buffer is buffer_before  # no reallocation
        second = plan.replay(x)
        assert first.tobytes() == second.tobytes()
        assert plan.replays == 2

    def test_aliased_output_is_copied_out_of_the_arena(self):
        def forward(x):
            return (x + 1.0).relu().reshape(4, 2)

        x = _float_inputs(2, (4,))
        trace = record_trace(forward, x)
        plan = compile_plan(trace)
        assert plan.copy_output  # reshape view of a fused chain's buffer
        first = plan.replay(x)
        snapshot = first.copy()
        plan.replay(x + 1.0)  # overwrite the arena with different data
        assert first.tobytes() == snapshot.tobytes()  # caller's array intact
        for step in plan.steps:
            buffer = getattr(step, "buffer", None)
            if buffer is not None:
                assert not np.shares_memory(first, buffer)

    def test_constants_are_referenced_not_folded(self):
        weight = Tensor(np.full((3,), 2.0, dtype=np.float32))

        def forward(x):
            return (x * weight).sum()

        x = _float_inputs(2, (3,))
        plan = compile_plan(record_trace(forward, x))
        before = plan.replay(x)
        np.multiply(weight.data, 10.0, out=weight.data)  # in-place update
        after = plan.replay(x)
        assert after == pytest.approx(before * 10.0)


class TestTraceRecording:
    def test_non_tensor_output_raises(self):
        with pytest.raises(TraceError, match="return a Tensor"):
            record_trace(lambda x: x.sum().item(), _float_inputs(1, (3,)))

    def test_output_computed_outside_apply_op_raises(self):
        with pytest.raises(TraceError, match="outside apply_op"):
            record_trace(lambda x: Tensor(np.zeros(3)), _float_inputs(1, (3,)))

    def test_integer_inputs_raise(self):
        with pytest.raises(TraceError, match="float ndarrays"):
            record_trace(lambda x: x.sum(), np.arange(4, dtype=np.int64))

    def test_nested_trace_raises(self):
        def forward(x):
            record_trace(lambda y: y.sum(), np.ones(2, dtype=np.float32))
            return x.sum()

        with pytest.raises(TraceError, match="already being recorded"):
            record_trace(forward, _float_inputs(1, (3,)))
        assert engine._state.tracer is None  # cleaned up despite the error

    def test_validation_catches_baked_in_python_math(self):
        def forward(x):
            # Array math outside the registry: the trace bakes in this run's
            # result, so validation on fresh inputs must reject the plan.
            shift = float(np.asarray(x.data).sum())
            return x + shift

        x = _float_inputs(2, (3,))
        plan, out = compile_forward(forward, x)
        assert plan is None
        assert out is not None  # the dispatched answer is still usable


class TestPlanCacheAndSession:
    def test_cache_stores_fallback_sentinel(self):
        cache = PlanCache()
        key = plan_key(((2, 3),), (np.float32,))
        assert cache.lookup(key) is None
        cache.store(key, None)
        assert cache.lookup(key) is FALLBACK
        stats = cache.stats()
        assert stats["plans"] == 0
        assert stats["fallback_keys"] == 1
        assert stats["misses"] == 1
        assert stats["fallbacks"] == 1

    def _session(self, **kwargs):
        build, shape = ZOO["simple_cnn"]
        return InferenceSession(build(), max_batch=8, **kwargs), shape

    def test_shape_change_misses_and_retraces(self):
        session, shape = self._session()
        session.predict(_float_inputs(2, shape))
        session.predict(_float_inputs(2, shape))
        session.predict(_float_inputs(3, shape))  # new batch size → new plan
        stats = session.plan_stats()
        assert stats["plans"] == 2
        assert stats["misses"] == 2
        assert stats["hits"] == 1
        assert stats["replays"] == 1

    def test_warm_compiles_the_steady_state_plan(self):
        session, shape = self._session()
        assert session.warm(shape, batch_sizes=(4,)) is True
        assert session.plan_stats()["plans"] == 1
        session.predict(_float_inputs(4, shape))
        assert session.plan_stats()["hits"] == 1

    def test_compile_false_always_dispatches(self):
        session, shape = self._session(compile=False)
        session.predict(_float_inputs(2, shape))
        stats = session.plan_stats()
        assert stats["compile"] is False
        assert stats["plans"] == 0
        assert stats["misses"] == 0

    def test_compiled_session_matches_dispatching_session(self):
        compiled, shape = self._session()
        dispatched, _ = self._session(compile=False)
        dispatched.model = compiled.model  # same weights
        x = _float_inputs(5, shape)
        first = compiled.predict(x)   # traces
        second = compiled.predict(x)  # replays
        reference = dispatched.predict(x)
        assert first.tobytes() == reference.tobytes()
        assert second.tobytes() == reference.tobytes()

    def test_describe_reports_plan_cache(self):
        session, shape = self._session()
        session.predict(_float_inputs(2, shape))
        description = session.describe()
        assert description["plan_cache"]["plans"] == 1
        assert description["plan_cache"]["compile"] is True


class TestEngineSatellites:
    def test_timing_hooks_snapshot_during_emission(self):
        calls = []

        def self_removing(name, seconds):
            calls.append(("first", name))
            engine.remove_op_timing_hook(self_removing)

        def counting(name, seconds):
            calls.append(("second", name))

        engine.add_op_timing_hook(self_removing)
        engine.add_op_timing_hook(counting)
        try:
            (Tensor(np.ones(2, dtype=np.float32)) + 1.0)  # one dispatch
            # The snapshot taken at dispatch time still ran both hooks even
            # though the first removed itself mid-emission.
            assert ("first", "add") in calls
            assert ("second", "add") in calls
            calls.clear()
            (Tensor(np.ones(2, dtype=np.float32)) + 1.0)
            assert calls == [("second", "add")]
        finally:
            engine.remove_op_timing_hook(counting)
        assert isinstance(engine._TIMING_HOOKS, tuple)

    def test_apply_op_accepts_mixed_tensor_and_raw_inputs(self):
        a = Tensor(np.arange(3, dtype=np.float32))
        out = apply_op("add", a, np.ones(3, dtype=np.float32))
        assert isinstance(out, Tensor)
        np.testing.assert_allclose(out.data, [1.0, 2.0, 3.0])

    def test_apply_op_all_tensor_inputs_skip_rewrapping(self):
        a = Tensor(np.arange(3, dtype=np.float32), requires_grad=True)
        b = Tensor(np.ones(3, dtype=np.float32))
        out = apply_op("add", a, b)
        out.backward(np.ones(3, dtype=np.float32))
        np.testing.assert_allclose(a.grad, np.ones(3))
