"""Tests for the proposed efficient quadratic neuron (dense and convolutional)."""

import numpy as np
import pytest

from repro.quadratic import (
    EfficientQuadraticConv2d,
    EfficientQuadraticLinear,
    neurons_for_width,
    proposed_parameter_count,
)
from repro.tensor import Tensor, check_gradients, im2col


RNG = np.random.default_rng(0)


class TestNeuronsForWidth:
    @pytest.mark.parametrize("width,rank,expected", [
        (10, 9, 1), (16, 3, 4), (17, 3, 5), (1, 9, 1), (64, 9, 7),
    ])
    def test_values(self, width, rank, expected):
        assert neurons_for_width(width, rank) == expected

    def test_invalid(self):
        with pytest.raises(ValueError):
            neurons_for_width(0, 3)
        with pytest.raises(ValueError):
            neurons_for_width(8, 0)


class TestDenseLayer:
    def _layer(self, **kwargs):
        defaults = dict(in_features=8, num_neurons=3, rank=2,
                        rng=np.random.default_rng(1))
        defaults.update(kwargs)
        return EfficientQuadraticLinear(**defaults)

    def test_output_width_vectorized(self):
        layer = self._layer()
        out = layer(Tensor(RNG.standard_normal((5, 8)).astype(np.float32)))
        assert out.shape == (5, 3 * (2 + 1))
        assert layer.out_features == 9

    def test_output_width_scalar(self):
        layer = self._layer(vectorized_output=False)
        out = layer(Tensor(RNG.standard_normal((5, 8)).astype(np.float32)))
        assert out.shape == (5, 3)

    def test_forward_matches_paper_formula(self):
        """y = wᵀx + b + (fᵏ)ᵀΛᵏfᵏ and the extra outputs are fᵏ = (Qᵏ)ᵀx."""
        layer = self._layer()
        x = RNG.standard_normal((4, 8)).astype(np.float64)
        out = layer(Tensor(x)).data
        for neuron in range(3):
            q = layer.q_weight.data[:, neuron * 2:(neuron + 1) * 2]
            lam = layer.lambdas.data[neuron]
            w = layer.weight.data[neuron]
            b = layer.bias.data[neuron]
            for sample in range(4):
                f = q.T @ x[sample]
                expected_y = w @ x[sample] + b + f @ np.diag(lam) @ f
                assert out[sample, neuron] == pytest.approx(expected_y, rel=1e-4)
                np.testing.assert_allclose(out[sample, 3 + neuron * 2:3 + (neuron + 1) * 2],
                                           f, rtol=1e-4)

    def test_trimmed_output(self):
        layer = self._layer(out_features=7)
        out = layer(Tensor(RNG.standard_normal((2, 8)).astype(np.float32)))
        assert out.shape == (2, 7)

    def test_over_requested_output_raises(self):
        with pytest.raises(ValueError):
            self._layer(out_features=100)

    def test_invalid_rank(self):
        with pytest.raises(ValueError):
            EfficientQuadraticLinear(8, 2, rank=0)

    def test_wrong_input_width_raises(self):
        with pytest.raises(ValueError):
            self._layer()(Tensor(np.zeros((2, 5), dtype=np.float32)))

    def test_3d_input(self):
        layer = self._layer()
        out = layer(Tensor(RNG.standard_normal((2, 6, 8)).astype(np.float32)))
        assert out.shape == (2, 6, 9)

    def test_parameter_count_matches_eq9(self):
        layer = self._layer(bias=False)
        assert layer.num_parameters() == layer.parameter_count()
        assert layer.parameter_count() == 3 * proposed_parameter_count(8, 2)

    def test_mac_count_helper(self):
        layer = self._layer()
        assert layer.mac_count() == 3 * ((2 + 1) * 8 + 4)

    def test_lambda_parameters_tagged_quadratic(self):
        layer = self._layer()
        assert layer.lambdas.tag == "quadratic"
        assert layer.weight.tag == "linear"

    def test_for_output_features(self):
        layer = EfficientQuadraticLinear.for_output_features(16, 20, rank=4,
                                                             rng=np.random.default_rng(2))
        assert layer.num_neurons == 4
        assert layer(Tensor(RNG.standard_normal((3, 16)).astype(np.float32))).shape == (3, 20)

    def test_for_output_features_scalar_output(self):
        layer = EfficientQuadraticLinear.for_output_features(
            16, 6, rank=4, vectorized_output=False, rng=np.random.default_rng(2))
        assert layer.num_neurons == 6

    def test_gradients(self):
        layer = self._layer()
        for parameter in layer.parameters():
            parameter.data = parameter.data.astype(np.float64)
        x = Tensor(RNG.standard_normal((3, 8)), requires_grad=True)

        def objective():
            return layer(x).tanh().sum()

        check_gradients(objective, list(layer.parameters()) + [x], tolerance=1e-4)

    def test_zero_lambda_reduces_to_linear_plus_projections(self):
        layer = self._layer(lambda_init=0.0)
        x = RNG.standard_normal((2, 8)).astype(np.float64)
        out = layer(Tensor(x)).data
        expected_linear = x @ layer.weight.data.T + layer.bias.data
        np.testing.assert_allclose(out[:, :3], expected_linear, rtol=1e-5)


class TestConvLayer:
    def _layer(self, **kwargs):
        defaults = dict(in_channels=3, num_filters=2, kernel_size=3, padding=1, rank=3,
                        rng=np.random.default_rng(3))
        defaults.update(kwargs)
        return EfficientQuadraticConv2d(**defaults)

    def test_output_channels(self):
        layer = self._layer()
        out = layer(Tensor(RNG.standard_normal((2, 3, 6, 6)).astype(np.float32)))
        assert out.shape == (2, 2 * 4, 6, 6)

    def test_stride(self):
        layer = self._layer(stride=2)
        out = layer(Tensor(RNG.standard_normal((2, 3, 8, 8)).astype(np.float32)))
        assert out.shape == (2, 8, 4, 4)

    def test_matches_dense_layer_on_patches(self):
        """The conv layer must equal the dense neuron applied to every im2col patch."""
        layer = self._layer(padding=0)
        x = RNG.standard_normal((1, 3, 5, 5)).astype(np.float64)
        out = layer(Tensor(x)).data                        # (1, 8, 3, 3)
        patches = im2col(x, 3, 1, 0)                       # (1, 3, 3, 27)

        q = layer.q_weight.data.reshape(2, 3, -1)          # (filters, rank, fan_in)
        w = layer.weight.data.reshape(2, -1)
        for filter_index in range(2):
            for i in range(3):
                for j in range(3):
                    patch = patches[0, i, j]
                    f = q[filter_index] @ patch
                    y = (w[filter_index] @ patch + layer.bias.data[filter_index]
                         + f @ np.diag(layer.lambdas.data[filter_index]) @ f)
                    assert out[0, filter_index, i, j] == pytest.approx(y, rel=1e-4)
                    np.testing.assert_allclose(
                        out[0, 2 + filter_index * 3:2 + (filter_index + 1) * 3, i, j],
                        f, rtol=1e-4)

    def test_trim_to_out_channels(self):
        layer = EfficientQuadraticConv2d.for_output_channels(3, 10, 3, rank=3, padding=1,
                                                             rng=np.random.default_rng(4))
        out = layer(Tensor(RNG.standard_normal((1, 3, 4, 4)).astype(np.float32)))
        assert out.shape == (1, 10, 4, 4)
        assert layer.num_filters == 3

    def test_for_output_channels_scalar_output(self):
        layer = EfficientQuadraticConv2d.for_output_channels(
            3, 6, 3, rank=3, padding=1, vectorized_output=False,
            rng=np.random.default_rng(4))
        assert layer.num_filters == 6
        out = layer(Tensor(RNG.standard_normal((1, 3, 4, 4)).astype(np.float32)))
        assert out.shape == (1, 6, 4, 4)

    def test_parameter_count_matches_eq9(self):
        layer = self._layer(bias=False)
        assert layer.num_parameters() == layer.parameter_count()

    def test_mac_count_per_position(self):
        layer = self._layer()
        fan_in = 27
        assert layer.mac_count_per_position() == 2 * ((3 + 1) * fan_in + 6)

    def test_q_initialization_orthogonal_with_gain(self):
        layer = self._layer(q_init_gain=1.0)
        q = layer.q_weight.data.reshape(2, 3, 27)[0].reshape(3, 27).T
        np.testing.assert_allclose(q.T @ q, np.eye(3), atol=1e-5)

    def test_gradients(self):
        layer = self._layer()
        for parameter in layer.parameters():
            parameter.data = parameter.data.astype(np.float64)
        x = Tensor(RNG.standard_normal((1, 3, 5, 5)), requires_grad=True)

        def objective():
            return layer(x).sigmoid().sum()

        check_gradients(objective, list(layer.parameters()) + [x], tolerance=1e-4)

    def test_invalid_requested_channels(self):
        with pytest.raises(ValueError):
            EfficientQuadraticConv2d(3, 1, 3, rank=3, out_channels=10)

    def test_repr(self):
        assert "rank=3" in repr(self._layer())
        assert "rank" in repr(EfficientQuadraticLinear(4, 2, rank=2))
