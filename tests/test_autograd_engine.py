"""Tests for the op registry, graph executor, and fused quadratic kernels.

Covers the autograd edge cases the engine must honour (nested no_grad,
mixed-dimension unbroadcast, double backward, diamond graphs), the registry
contract (every op declares a VJP and a gradcheck sample), per-op timing
hooks, and the bit-level equivalence of the fused quadratic hot-path kernels
with their unfused compositions.
"""

import numpy as np
import pytest

from repro.metrics.profiler import record_op_times, _find_rule
from repro.nn.layers import Conv2d, Linear
from repro.quadratic import EfficientQuadraticConv2d, EfficientQuadraticLinear
from repro.tensor import (
    Tensor,
    apply_op,
    column_cache,
    graph_nodes_created,
    is_grad_enabled,
    no_grad,
    op_names,
    unbroadcast,
)
from repro.tensor.ops import OPS


class TestGradMode:
    def test_nested_no_grad_restores_each_level(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
            with no_grad():
                assert not is_grad_enabled()
            # Leaving the inner block must keep gradients disabled.
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_nested_no_grad_blocks_graph_at_every_depth(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            with no_grad():
                inner = x * 2
            outer = x * 3
        assert not inner.requires_grad and not outer.requires_grad
        assert inner._parents == () and outer._parents == ()

    def test_no_grad_as_decorator(self):
        x = Tensor([2.0], requires_grad=True)

        @no_grad()
        def run(value):
            assert not is_grad_enabled()
            return value * 3

        out = run(x)
        assert not out.requires_grad and out._parents == ()
        assert is_grad_enabled()  # mode restored after the call

    def test_no_grad_decorator_restores_mode_on_exception(self):
        @no_grad()
        def boom():
            raise RuntimeError("inference failed")

        with pytest.raises(RuntimeError, match="inference failed"):
            boom()
        assert is_grad_enabled()

    def test_no_grad_decorator_nests_with_context_manager(self):
        @no_grad()
        def run():
            return is_grad_enabled()

        with no_grad():
            assert run() is False
            # Leaving the decorated call must keep the outer block's mode.
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_decorator_preserves_metadata(self):
        @no_grad()
        def documented():
            """docs survive wrapping"""

        assert documented.__name__ == "documented"
        assert documented.__doc__ == "docs survive wrapping"


class TestGraphNodeCounter:
    def test_counts_only_recorded_nodes(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        constant = Tensor([3.0, 4.0])
        before = graph_nodes_created()
        (x * 2 + 1).sum()           # three recorded nodes: mul, add, sum
        assert graph_nodes_created() - before == 3
        before = graph_nodes_created()
        constant * 2                # no requires_grad input → nothing recorded
        assert graph_nodes_created() == before

    def test_no_grad_region_creates_zero_nodes(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        before = graph_nodes_created()
        with no_grad():
            ((x * 2 + 1) ** 2).sum()
        assert graph_nodes_created() == before


class TestUnbroadcastMixed:
    def test_added_dims_and_size_one_dims_together(self):
        # grad (4, 2, 3) -> shape (1, 3): sum over the added leading dim AND
        # the size-1 broadcast dim in one call.
        grad = np.ones((4, 2, 3))
        reduced = unbroadcast(grad, (1, 3))
        assert reduced.shape == (1, 3)
        np.testing.assert_allclose(reduced, np.full((1, 3), 8.0))

    def test_mixed_through_real_ops(self):
        a = Tensor(np.ones((1, 3), dtype=np.float64), requires_grad=True)
        b = Tensor(np.ones((4, 2, 3), dtype=np.float64), requires_grad=True)
        (a * b).sum().backward()
        assert a.grad.shape == (1, 3)
        np.testing.assert_allclose(a.grad, np.full((1, 3), 8.0))
        assert b.grad.shape == (4, 2, 3)


class TestBackwardSemantics:
    def test_double_backward_accumulates_into_leaves(self):
        # Fresh graphs per call: plain accumulation into the leaf.
        x = Tensor([1.0, 2.0], requires_grad=True)
        (x * 3).sum().backward()
        first = x.grad.copy()
        (x * 3).sum().backward()
        np.testing.assert_allclose(x.grad, 2 * first)

    def test_double_backward_same_root_compounds_root_grad(self):
        # Historical engine semantics: the root retains its gradient, so a
        # second backward() on the SAME root accumulates 1 into the root
        # first (root grad 1 -> 2) and pushes the doubled gradient down:
        # leaf receives 3, then 2 * 3 on the second pass.
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = (x * 3).sum()
        y.backward()
        np.testing.assert_allclose(x.grad, [3.0, 3.0])
        y.backward()
        np.testing.assert_allclose(y.grad, 2.0)
        np.testing.assert_allclose(x.grad, [9.0, 9.0])

    def test_double_backward_does_not_mutate_retained_grad_array(self):
        x = Tensor([1.0], requires_grad=True)
        y = (x * 2).sum()
        y.backward()
        retained = x.grad
        snapshot = retained.copy()
        y.backward()
        # The previously handed-out array must not have been written in place.
        np.testing.assert_allclose(retained, snapshot)

    def test_diamond_graph_accumulates_once_per_path(self):
        # z = left + right with both arms sharing the subgraph y = x * x:
        #   dz/dx = d(y*3)/dx + d(y*2)/dx = 5 * 2x = 30 at x = 3.
        x = Tensor([3.0], requires_grad=True)
        y = x * x
        z = (y * 3 + y * 2).sum()
        z.backward()
        np.testing.assert_allclose(x.grad, [30.0])

    def test_deep_diamond_shared_subgraph(self):
        x = Tensor(np.arange(1.0, 5.0), requires_grad=True)
        shared = (x * 2).tanh()
        left = (shared * shared).sum()
        right = shared.sum()
        (left + right).backward()
        t = np.tanh(2 * x.data)
        expected = (2 * t + 1) * (1 - t ** 2) * 2
        np.testing.assert_allclose(x.grad, expected, rtol=1e-6)

    def test_interior_gradients_are_freed(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        hidden = x * 2
        out = (hidden * 3).sum()
        out.backward()
        assert hidden.grad is None          # interior: freed after propagation
        assert out.grad is not None          # root keeps its gradient
        assert x.grad is not None            # leaf keeps its gradient

    def test_leaf_grads_are_private_and_writable(self):
        # sum's VJP emits a read-only broadcast view; the retained leaf grad
        # must be materialized into a private writable buffer.
        w = Tensor(np.ones(3, dtype=np.float64), requires_grad=True)
        w.sum().backward()
        assert w.grad.flags.writeable
        w.grad[0] = 5.0          # user code may mutate .grad in place
        assert w.grad[0] == 5.0

    def test_leaf_grad_does_not_alias_caller_gradient(self):
        w = Tensor(np.ones(3, dtype=np.float64), requires_grad=True)
        out = w.sum()
        seed_grad = np.ones((), dtype=np.float64)
        out.backward(seed_grad)
        seed_grad[...] = 100.0
        np.testing.assert_allclose(w.grad, [1.0, 1.0, 1.0])

    def test_sibling_leaf_grads_do_not_share_storage(self):
        # Same-shape add passes the gradient through by reference to both
        # parents; each retained leaf grad must still be a private buffer.
        a = Tensor(np.ones(3, dtype=np.float64), requires_grad=True)
        b = Tensor(np.ones(3, dtype=np.float64), requires_grad=True)
        seed = np.full(3, 2.0)
        (a + b).backward(seed)
        assert a.grad is not b.grad
        assert a.grad is not seed and b.grad is not seed
        a.grad[0] = 99.0
        seed[...] = -1.0
        np.testing.assert_allclose(b.grad, [2.0, 2.0, 2.0])

    def test_backward_through_same_parent_twice(self):
        x = Tensor([2.0], requires_grad=True)
        y = (x * x).sum()                    # x appears twice as parent
        y.backward()
        np.testing.assert_allclose(x.grad, [4.0])


class TestRegistryContract:
    def test_every_op_declares_vjp_and_sample(self):
        for name in op_names():
            opdef = OPS[name]
            assert opdef.vjp is not None, f"op '{name}' lacks a VJP"
            assert opdef.sample is not None, f"op '{name}' lacks a gradcheck sample"

    def test_core_primitives_are_registered(self):
        registered = set(op_names())
        for expected in ["add", "mul", "div", "pow", "matmul", "exp", "log", "sum",
                         "max", "transpose", "reshape", "getitem",
                         "conv2d", "unfold", "softmax", "log_softmax",
                         "quadratic_response", "quadratic_conv2d"]:
            assert expected in registered, f"missing op '{expected}'"

    def test_unknown_op_raises_with_listing(self):
        with pytest.raises(KeyError, match="unknown op"):
            apply_op("definitely_not_an_op", Tensor([1.0]))

    def test_duplicate_registration_rejected(self):
        from repro.tensor.ops import register_op
        with pytest.raises(ValueError, match="already registered"):
            register_op("add", lambda ctx, a: a, lambda ctx, g, n: (g,))


class TestTimingHooks:
    def test_forward_and_backward_ops_are_timed(self):
        x = Tensor(np.ones((4, 4)), requires_grad=True)
        with record_op_times() as table:
            ((x @ x).relu().sum()).backward()
        assert table.calls["matmul"] == 1
        assert table.calls["matmul:backward"] == 1
        assert table.calls["relu"] == 1
        assert table.grand_total >= 0.0
        rows = table.as_rows()
        assert rows and {"op", "seconds", "calls", "mean_microseconds"} <= set(rows[0])
        assert "matmul" in table.summary()

    def test_hooks_removed_after_context(self):
        from repro.tensor import engine
        with record_op_times():
            pass
        assert engine._TIMING_HOOKS == ()


class TestItemError:
    def test_item_on_size_one(self):
        assert Tensor([[3.5]]).item() == pytest.approx(3.5)

    def test_item_on_larger_tensor_raises_clear_error(self):
        with pytest.raises(ValueError, match=r"item\(\) on tensor of size 6"):
            Tensor(np.zeros((2, 3))).item()


class TestProfilerRuleMatching:
    def test_subclasses_of_profiled_layers_match(self):
        class MyConv(Conv2d):
            pass

        class MyLinear(Linear):
            pass

        assert _find_rule(MyConv(3, 8, 3)) is _find_rule(Conv2d(3, 8, 3))
        assert _find_rule(MyLinear(4, 2)) is _find_rule(Linear(4, 2))

    def test_most_derived_rule_wins(self):
        from repro.quadratic.baselines import GeneralQuadraticConv2d, PureQuadraticConv2d
        from repro.quadratic.complexity import neuron_complexity
        # PureQuadraticConv2d subclasses GeneralQuadraticConv2d; it must match
        # its own "pure" rule (no linear-term MACs) rather than the general
        # base-class rule or — as before the fix — being silently skipped.
        pure = PureQuadraticConv2d(2, 3, 3, rng=np.random.default_rng(0))
        general = GeneralQuadraticConv2d(2, 3, 3, rng=np.random.default_rng(0))
        pure_rule, general_rule = _find_rule(pure), _find_rule(general)
        assert pure_rule is not None and pure_rule is not general_rule
        output = Tensor(np.zeros((1, 3, 4, 4), dtype=np.float32))
        fan_in = 2 * 3 * 3
        per_position = 4 * 4 * 3
        assert pure_rule(pure, output) == \
            per_position * neuron_complexity("pure", fan_in, 1).macs
        assert general_rule(general, output) == \
            per_position * neuron_complexity("general", fan_in, 1).macs


def _dense_pair(vectorized, seed=0):
    layer = EfficientQuadraticLinear(6, 3, rank=2, vectorized_output=vectorized,
                                     lambda_init=0.3, rng=np.random.default_rng(seed))
    for parameter in layer.parameters():
        parameter.data = parameter.data.astype(np.float64)
    x = Tensor(np.random.default_rng(seed + 1).standard_normal((5, 6)), requires_grad=True)
    return layer, x


def _conv_pair(vectorized, seed=0):
    layer = EfficientQuadraticConv2d(2, 2, 3, padding=1, rank=2,
                                     vectorized_output=vectorized, lambda_init=0.3,
                                     rng=np.random.default_rng(seed))
    for parameter in layer.parameters():
        parameter.data = parameter.data.astype(np.float64)
    x = Tensor(np.random.default_rng(seed + 1).standard_normal((2, 2, 5, 5)),
               requires_grad=True)
    return layer, x


class TestFusedEquivalence:
    @pytest.mark.parametrize("vectorized", [True, False])
    def test_dense_forward_matches_unfused(self, vectorized):
        layer, x = _dense_pair(vectorized)
        fused = layer(x)
        unfused = layer._forward_unfused(x)
        np.testing.assert_allclose(fused.data, unfused.data, atol=1e-5, rtol=0)

    @pytest.mark.parametrize("vectorized", [True, False])
    def test_dense_gradients_match_unfused(self, vectorized):
        layer, x = _dense_pair(vectorized)
        weights = np.random.default_rng(7).standard_normal(layer(x).shape)

        def grads(forward):
            for parameter in layer.parameters():
                parameter.zero_grad()
            x.zero_grad()
            (forward(x) * Tensor(weights)).sum().backward()
            return [x.grad.copy()] + [p.grad.copy() for p in layer.parameters()]

        fused_grads = grads(layer)
        unfused_grads = grads(layer._forward_unfused)
        assert len(fused_grads) == len(unfused_grads)
        for fused_grad, unfused_grad in zip(fused_grads, unfused_grads):
            np.testing.assert_allclose(fused_grad, unfused_grad, atol=1e-5, rtol=1e-6)

    @pytest.mark.parametrize("vectorized", [True, False])
    def test_conv_forward_matches_unfused(self, vectorized):
        layer, x = _conv_pair(vectorized)
        fused = layer(x)
        unfused = layer._forward_unfused(x)
        np.testing.assert_allclose(fused.data, unfused.data, atol=1e-5, rtol=0)

    @pytest.mark.parametrize("vectorized", [True, False])
    def test_conv_gradients_match_unfused(self, vectorized):
        layer, x = _conv_pair(vectorized)
        weights = np.random.default_rng(8).standard_normal(layer(x).shape)

        def grads(forward):
            for parameter in layer.parameters():
                parameter.zero_grad()
            x.zero_grad()
            (forward(x) * Tensor(weights)).sum().backward()
            return [x.grad.copy()] + [p.grad.copy() for p in layer.parameters()]

        fused_grads = grads(layer)
        unfused_grads = grads(layer._forward_unfused)
        for fused_grad, unfused_grad in zip(fused_grads, unfused_grads):
            np.testing.assert_allclose(fused_grad, unfused_grad, atol=1e-5, rtol=1e-6)

    def test_trimmed_output_width_preserved(self):
        layer = EfficientQuadraticLinear.for_output_features(
            6, 8, rank=2, rng=np.random.default_rng(3))
        out = layer(Tensor(np.zeros((2, 6), dtype=np.float32)))
        assert out.shape == (2, 8)


class TestColumnCache:
    def test_inference_conv_reuses_column_buffer(self):
        column_cache.clear()
        hits_before = column_cache.hits
        conv = Conv2d(3, 4, 3, padding=1, rng=np.random.default_rng(0))
        conv.eval()
        x = Tensor(np.random.default_rng(1).standard_normal((2, 3, 8, 8)).astype(np.float32))
        with no_grad():
            first = conv(x)
            second = conv(x)
        assert column_cache.hits > hits_before
        np.testing.assert_allclose(first.data, second.data)

    def test_cache_is_bounded_by_entries_and_bytes_with_lru_eviction(self):
        from repro.tensor.ops import ColumnBufferCache
        cache = ColumnBufferCache(max_entries=2, max_bytes=10_000)
        cache.get((10, 10), np.float32)       # 400 B
        cache.get((20, 20), np.float32)       # 1600 B
        cache.get((30, 30), np.float32)       # 3600 B -> evicts (10, 10) (LRU)
        assert len(cache._buffers) == 2
        cache.get((20, 20), np.float32)       # hit; refreshes recency
        assert cache.hits == 1
        # A buffer bigger than max_bytes is handed out but never retained.
        big = cache.get((60, 60), np.float64)  # 28.8 kB > max_bytes
        assert big.shape == (60, 60)
        assert all(buf.nbytes <= 10_000 for buf in cache._buffers.values())
        assert cache.total_bytes <= 10_000

    def test_training_conv_does_not_touch_cache(self):
        column_cache.clear()
        misses_before = column_cache.misses
        conv = Conv2d(3, 4, 3, padding=1, rng=np.random.default_rng(0))
        x = Tensor(np.random.default_rng(1).standard_normal((2, 3, 8, 8)).astype(np.float32),
                   requires_grad=True)
        conv(x).sum().backward()
        assert column_cache.misses == misses_before
