"""Fused vs unfused quadratic-neuron kernels: wall-time comparison.

The fused ``quadratic_response`` / ``quadratic_conv2d`` registry ops evaluate
the proposed neuron ``y = wᵀx + b + (fᵏ)ᵀΛᵏfᵏ`` with one hand-derived VJP;
the unfused reference path builds the same computation node by node (two full
convolutions in the conv case).  These benchmarks time a full
forward + backward step through each path so later PRs have a fusion
trajectory to regress against; ``benchmarks/run_bench.py`` folds the numbers
into ``BENCH_autograd.json``.
"""

import numpy as np
import pytest

from repro.quadratic import EfficientQuadraticConv2d, EfficientQuadraticLinear
from repro.tensor import Tensor


@pytest.fixture(scope="module")
def dense_setup():
    layer = EfficientQuadraticLinear(256, 32, rank=9, lambda_init=0.1,
                                     rng=np.random.default_rng(0))
    x = Tensor(np.random.default_rng(1).standard_normal((128, 256)).astype(np.float32),
               requires_grad=True)
    return layer, x


@pytest.fixture(scope="module")
def conv_setup():
    layer = EfficientQuadraticConv2d(16, 4, 3, padding=1, rank=9, lambda_init=0.1,
                                     rng=np.random.default_rng(0))
    x = Tensor(np.random.default_rng(1).standard_normal((8, 16, 16, 16)).astype(np.float32),
               requires_grad=True)
    return layer, x


def _train_step(layer, x, forward):
    for parameter in layer.parameters():
        parameter.zero_grad()
    x.zero_grad()
    forward(x).sum().backward()


def test_bench_fused_quadratic_linear(benchmark, dense_setup):
    layer, x = dense_setup
    benchmark(_train_step, layer, x, layer)


def test_bench_unfused_quadratic_linear(benchmark, dense_setup):
    layer, x = dense_setup
    benchmark(_train_step, layer, x, layer._forward_unfused)


def test_bench_fused_quadratic_conv(benchmark, conv_setup):
    layer, x = conv_setup
    benchmark(_train_step, layer, x, layer)


def test_bench_unfused_quadratic_conv(benchmark, conv_setup):
    layer, x = conv_setup
    benchmark(_train_step, layer, x, layer._forward_unfused)
