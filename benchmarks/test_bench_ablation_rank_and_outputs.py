"""Ablation benchmarks: decomposition rank sweep and vectorized-output ablation.

These cover the two design choices of Sec. III that the paper motivates
analytically: the rank-k truncation (expressivity/cost knob) and the reuse of
the intermediate features fᵏ as outputs (which is what makes the per-output
cost essentially linear).
"""

from repro.experiments import ablation

from conftest import run_once


def test_ablation_rank_sweep(benchmark, scale):
    result = run_once(benchmark, ablation.run_rank_sweep, scale, (1, 3))

    print(f"\n[Ablation] decomposition rank sweep (scale={scale.name})")
    print(result["report"])

    ranks = [row["rank"] for row in result["rows"]]
    assert ranks == [1, 3]
    assert all(not row["diverged"] for row in result["rows"])


def test_ablation_vectorized_output(benchmark, scale):
    result = run_once(benchmark, ablation.run_vectorized_output_ablation, scale)

    print(f"\n[Ablation] vectorized output (scale={scale.name})")
    print(result["report"])
    comparison = result["comparison"]
    print(f"scalar-output / vectorized-output parameter ratio: "
          f"{comparison['parameter_ratio']:.2f}x")

    # Removing the vectorized output forces one neuron per channel, multiplying
    # the parameter and MAC cost (Sec. III-C).
    assert comparison["parameter_ratio"] > 1.5
    assert comparison["mac_ratio"] > 1.5
