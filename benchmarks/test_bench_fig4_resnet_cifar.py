"""Fig. 4 benchmark: linear vs proposed quadratic ResNets on the CIFAR-10 stand-in.

Regenerates the accuracy / parameters / MACs sweep and the paper's headline
depth-shift comparisons (quadratic ResNet at depth d vs linear ResNet at the
next deeper depth).
"""

from repro.experiments import fig4
from repro.experiments.reporting import format_table

from conftest import run_once


def test_fig4_linear_vs_proposed(benchmark, scale):
    result = run_once(benchmark, fig4.run, scale)

    print(f"\n[Fig. 4] linear vs proposed neurons (scale={scale.name})")
    print(result["report"])
    print(format_table(result["comparisons"]))

    rows = result["rows"]
    assert len(rows) == 2 * len(scale.resnet_depths)
    # Cost claims are exact: the quadratic network at depth d is cheaper than
    # the next deeper linear network (the -29% / -50% arrows of Fig. 4).
    for comparison in result["comparisons"]:
        assert comparison["parameter_change"] < -0.25
        assert comparison["mac_change"] < -0.25


def test_fig4_paper_scale_costs(benchmark):
    """Exact cost axes of Fig. 4 at the paper's architecture scale (no training)."""
    rows = run_once(benchmark, fig4.paper_scale_costs, (20, 32), 9)

    print("\n[Fig. 4] paper-scale cost axes (32x32 inputs, width 16, k = 9)")
    print(format_table(rows))

    by_model = {row["model"]: row for row in rows}
    # ResNet-20/32 parameter budgets reported by the paper's Fig. 4 x-axis.
    assert abs(by_model["ResNet-20/linear"]["parameters_millions"] - 0.27) < 0.03
    assert abs(by_model["ResNet-32/linear"]["parameters_millions"] - 0.46) < 0.05
