#!/usr/bin/env python
"""Compatibility wrapper: regenerate ``BENCH_autograd.json`` via ``repro bench``.

The benchmark harness is unified with the experiment CLI — the perf
trajectory is produced by the same content-hash-cached runner that powers
``python -m repro run`` / ``sweep`` (see :mod:`repro.bench`), so figure
timings measure exactly what the sweeps execute and the fresh artifacts warm
the cache for subsequent runs.  This script remains as the historical entry
point::

    PYTHONPATH=src python benchmarks/run_bench.py              # default subset
    PYTHONPATH=src python benchmarks/run_bench.py --all        # every experiment
    PYTHONPATH=src python benchmarks/run_bench.py --scale bench --output out.json

and simply forwards to ``python -m repro bench``.  The ``test_bench_*.py``
pytest-benchmark suite under this directory is still available for
interactive profiling (``pytest benchmarks/ --benchmark-only``).
"""

from __future__ import annotations

import argparse
import os
import sys

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(BENCH_DIR)

# Default subset: the headline figure/table repros named by the acceptance
# criteria (fig4 / table2); the fused-kernel comparison always runs.
DEFAULT_EXPERIMENTS = ["fig4", "table2"]


def main(argv: list[str] | None = None) -> int:
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    from repro.cli import main as cli_main

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default=os.environ.get("REPRO_SCALE", "smoke"),
                        choices=["smoke", "bench", "paper"],
                        help="experiment scale to time at")
    parser.add_argument("--all", action="store_true",
                        help="time every registered experiment instead of the "
                             "default subset")
    parser.add_argument("--min-fused-speedup", type=float, default=None,
                        help="fail when any fused-kernel speedup falls below "
                             "this ratio")
    parser.add_argument("--output", default=os.path.join(REPO_ROOT, "BENCH_autograd.json"),
                        help="where to write the summary JSON")
    args = parser.parse_args(argv)

    command = ["bench", "--scale", args.scale, "--output", args.output]
    if args.min_fused_speedup is not None:
        command += ["--min-fused-speedup", str(args.min_fused_speedup)]
    if not args.all:
        command += DEFAULT_EXPERIMENTS
    return cli_main(command)


if __name__ == "__main__":
    raise SystemExit(main())
