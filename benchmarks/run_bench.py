#!/usr/bin/env python
"""Benchmark harness: run the ``test_bench_*`` suite, write ``BENCH_autograd.json``.

Runs the pytest-benchmark suite under this directory and distils the results
into a single machine-readable file at the repository root so successive PRs
have a performance trajectory to regress against:

* ``figure_repros`` — wall time of every figure/table reproduction benchmark
  (fig4 ResNet/CIFAR and table2 Transformer by default).
* ``fused_ops`` — fused vs unfused quadratic-neuron kernel timings from
  ``test_bench_fused_ops.py`` with the resulting speedups.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py              # default subset
    PYTHONPATH=src python benchmarks/run_bench.py --all        # whole suite
    PYTHONPATH=src python benchmarks/run_bench.py --scale bench --output out.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
import time

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(BENCH_DIR)

# Default subset: the fused-kernel comparison plus the two headline
# figure/table repros named by the acceptance criteria (fig4 / table2).
DEFAULT_TARGETS = [
    "test_bench_fused_ops.py",
    "test_bench_fig4_resnet_cifar.py",
    "test_bench_table2_transformer.py",
]


def run_pytest_benchmarks(targets: list[str], scale: str) -> list[dict]:
    """Run the selected benchmark files, return pytest-benchmark's records."""
    env = dict(os.environ)
    env["REPRO_SCALE"] = scale
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    with tempfile.TemporaryDirectory() as tmp:
        json_path = os.path.join(tmp, "benchmark.json")
        command = [sys.executable, "-m", "pytest", "-q",
                   *[os.path.join(BENCH_DIR, target) for target in targets],
                   f"--benchmark-json={json_path}"]
        completed = subprocess.run(command, cwd=REPO_ROOT, env=env)
        if completed.returncode != 0:
            raise SystemExit(f"benchmark run failed with exit code {completed.returncode}")
        with open(json_path) as handle:
            payload = json.load(handle)
    return payload.get("benchmarks", [])


def _stats(record: dict) -> dict:
    stats = record["stats"]
    return {
        "mean_seconds": stats["mean"],
        "min_seconds": stats["min"],
        "stddev_seconds": stats["stddev"],
        "rounds": stats["rounds"],
    }


def summarize(records: list[dict]) -> dict:
    """Split raw pytest-benchmark records into repro timings and fused pairs."""
    figure_repros: dict[str, dict] = {}
    fused_ops: dict[str, dict] = {}
    for record in records:
        name = record["name"]
        if "fused_quadratic" in name:
            fused_ops[name] = _stats(record)
        else:
            figure_repros[name] = _stats(record)

    speedups = {}
    for kind in ("linear", "conv"):
        fused = fused_ops.get(f"test_bench_fused_quadratic_{kind}")
        unfused = fused_ops.get(f"test_bench_unfused_quadratic_{kind}")
        if fused and unfused and fused["mean_seconds"] > 0:
            speedups[f"quadratic_{kind}_speedup"] = (
                unfused["mean_seconds"] / fused["mean_seconds"])
    return {"figure_repros": figure_repros, "fused_ops": fused_ops,
            "fused_speedups": speedups}


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default=os.environ.get("REPRO_SCALE", "smoke"),
                        choices=["smoke", "bench", "paper"],
                        help="experiment scale forwarded as REPRO_SCALE")
    parser.add_argument("--all", action="store_true",
                        help="run every test_bench_* module instead of the default subset")
    parser.add_argument("--output", default=os.path.join(REPO_ROOT, "BENCH_autograd.json"),
                        help="where to write the summary JSON")
    args = parser.parse_args(argv)

    if args.all:
        targets = sorted(name for name in os.listdir(BENCH_DIR)
                         if name.startswith("test_bench_") and name.endswith(".py"))
    else:
        targets = DEFAULT_TARGETS

    started = time.time()
    records = run_pytest_benchmarks(targets, args.scale)
    summary = summarize(records)
    summary.update({
        "scale": args.scale,
        "targets": targets,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S", time.localtime(started)),
        "harness_seconds": time.time() - started,
        "python": platform.python_version(),
        "platform": platform.platform(),
    })

    with open(args.output, "w") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print(f"\nwrote {args.output}")
    for name, stats in sorted(summary["figure_repros"].items()):
        print(f"  {name:<45s} {stats['mean_seconds'] * 1e3:>12.1f} ms")
    for name, stats in sorted(summary["fused_ops"].items()):
        print(f"  {name:<45s} {stats['mean_seconds'] * 1e6:>12.1f} us")
    for name, ratio in sorted(summary["fused_speedups"].items()):
        print(f"  {name:<45s} {ratio:>11.2f}x")


if __name__ == "__main__":
    main()
