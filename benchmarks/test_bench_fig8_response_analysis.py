"""Fig. 8 benchmark: linear vs quadratic response analysis of a trained quadratic CNN.

Trains a small quadratic CNN, extracts the linear and quadratic response maps
of its first quadratic convolution for several test images, and reports the
low-frequency energy fractions that quantify the paper's visual observation.
"""

from repro.experiments import fig8

from conftest import run_once


def test_fig8_response_analysis(benchmark, scale):
    result = run_once(benchmark, fig8.run, scale)

    print(f"\n[Fig. 8] linear vs quadratic response frequency split (scale={scale.name})")
    print(result["report"])
    summary = result["summary"]
    print(f"mean low-frequency fraction: linear={summary['mean_linear_low_fraction']:.3f} "
          f"quadratic={summary['mean_quadratic_low_fraction']:.3f}")

    assert result["rows"], "expected per-image response rows"
    for row in result["rows"]:
        assert 0.0 <= row["linear_low_fraction"] <= 1.0
        assert 0.0 <= row["quadratic_low_fraction"] <= 1.0
    # Both response maps must be non-degenerate (non-zero activity).
    assert all(row["quadratic_response_std"] > 0 for row in result["rows"])
