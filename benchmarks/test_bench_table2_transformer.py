"""Table II benchmark: baseline vs quadratic Transformer on the translation stand-in.

Trains the baseline Transformer and the quadratic Transformers (one per Λ
learning rate), scores BLEU under the four evaluation settings of Table II and
reports the parameter reduction.
"""

from repro.experiments import table2

from conftest import run_once


def test_table2_translation(benchmark, scale):
    result = run_once(benchmark, table2.run, scale)

    print(f"\n[Table II] translation BLEU and parameters (scale={scale.name})")
    print(result["report"])
    parameters = result["parameters"]
    print(f"baseline parameters : {parameters['baseline_parameters']:,}")
    print(f"quadratic parameters: {parameters['quadratic_parameters']:,} "
          f"({parameters['parameter_change'] * 100:+.1f}%)")

    assert len(result["rows"]) == 4
    # Paper: the quadratic Transformer cuts parameters (and therefore FLOPs,
    # which scale with parameters) by roughly 20%.
    assert parameters["parameter_change"] < -0.10
    for row in result["rows"]:
        for key, value in row.items():
            if key == "baseline" or key.startswith("quadratic_"):
                assert 0.0 <= value <= 100.0
    if scale.name != "smoke":
        # With a non-trivial training budget the translations must be meaningful.
        assert all(row["baseline"] > 5.0 for row in result["rows"])
