"""Fig. 5 benchmark: proposed neuron vs prior quadratic neurons (Quad-1 [19], Quad-2 [21]).

Regenerates the accuracy-vs-cost comparison and checks the paper's claim that
the proposed neuron needs at least ~24% fewer parameters and MACs than the
prior quadratic designs.
"""

from repro.experiments import fig5
from repro.experiments.reporting import format_table

from conftest import run_once


def test_fig5_prior_quadratic_comparison(benchmark, scale):
    result = run_once(benchmark, fig5.run, scale)

    print(f"\n[Fig. 5] proposed vs Quad-1 / Quad-2 (scale={scale.name})")
    print(result["report"])
    print(format_table(result["savings"]))

    assert result["savings"], "expected savings rows for every depth"
    for saving in result["savings"]:
        # Paper: at least 24% fewer parameters and MACs than Quad-1 / Quad-2.
        # Even with the widened proposed networks the saving stays well above that.
        assert saving["parameter_change"] < -0.24
        assert saving["mac_change"] < -0.24
