"""Fig. 6 benchmark: training stability of the proposed neuron vs kervolution (KNN-n).

Trains the scaled ResNet-18 stability configurations and reports divergence
flags, loss fluctuation and accuracy, mirroring the Fig. 6 curves.
"""

from repro.experiments import fig6

from conftest import run_once


def test_fig6_training_stability(benchmark, scale):
    result = run_once(benchmark, fig6.run, scale)

    print(f"\n[Fig. 6] training stability (scale={scale.name})")
    print(result["report"])
    print("stable runs:   ", ", ".join(result["comparison"]["stable"]) or "(none)")
    print("diverged runs: ", ", ".join(result["comparison"]["diverged"]) or "(none)")

    reports = {report["label"]: report for report in result["reports"]}
    ours = reports["Ours"]
    # The proposed neuron must train stably in every layer.
    assert not ours["diverged"]
    # The paper's qualitative claim: deploying the neuron everywhere beats the
    # kervolution configurations, which degrade/destabilize as more layers use them.
    knn_reports = [report for label, report in reports.items() if label.startswith("KNN-")]
    assert ours["best_train_accuracy"] >= max(report["best_train_accuracy"]
                                              for report in knn_reports)
