"""Table I benchmark: regenerate the neuron complexity table and verify it.

Prints the parameter / MAC counts of every neuron design for the paper's
reference setting (n = 27, k = 9) and checks the implementation-level counts
against the symbolic formulas.
"""

from repro.experiments import table1
from repro.experiments.reporting import format_table

from conftest import run_once


def test_table1_complexity(benchmark):
    result = run_once(benchmark, table1.run)

    print("\n[Table I] neuron complexity (n = 27, k = 9)")
    print(result["report"])
    print(format_table(result["verification"]))

    rows = {row["neuron"]: row for row in result["tables"][(27, 9)]}
    assert rows["proposed"]["parameters"] == 279          # Eq. (9)
    assert rows["proposed"]["macs"] == 288                 # Eq. (10)
    assert rows["proposed"]["parameters_per_output"] < rows["quad2"]["parameters_per_output"]
    assert all(row["match"] for row in result["verification"])
