"""Fig. 7 benchmark: per-layer distribution of linear vs quadratic parameters.

Trains a quadratic ResNet on the CIFAR-100 stand-in and reports the spread of
the Λ parameters per layer, checking the paper's observation that the
quadratic parameters are used unevenly across depth.
"""

from repro.experiments import fig7

from conftest import run_once


def test_fig7_parameter_distribution(benchmark, scale):
    result = run_once(benchmark, fig7.run, scale)

    print(f"\n[Fig. 7] quadratic parameter distribution per layer (scale={scale.name})")
    print(result["report"])
    summary = result["summary"]
    print(f"most significant layers : {summary['most_significant_layers']}")
    print(f"least significant layers: {summary['least_significant_layers']}")
    print(f"spread ratio max/min    : {summary['spread_ratio_max_to_min']:.2f}")

    assert summary["num_layers"] > 0
    # Fig. 7's observation: the importance of the quadratic term differs a lot
    # between layers (some spreads are much larger than others).
    assert summary["spread_ratio_max_to_min"] > 1.5
    kinds = {row["kind"] for row in result["stats"]}
    assert kinds == {"linear", "quadratic"}
