"""Shared configuration for the benchmark harness.

Each benchmark module regenerates one table or figure of the paper.  The
workload size is controlled by the ``REPRO_SCALE`` environment variable:

* ``smoke`` (default) — every experiment runs in seconds; the qualitative
  shape of the results is visible but noisy.
* ``bench``           — the scale used for the numbers recorded in
  EXPERIMENTS.md (a few minutes for the full suite on a laptop CPU).
* ``paper``           — the closest approximation of the paper's settings;
  only practical with hours of CPU time.
"""

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.experiments import get_scale  # noqa: E402  (path bootstrap above)


@pytest.fixture(scope="session")
def scale():
    """Experiment scale selected through the REPRO_SCALE environment variable."""
    return get_scale(os.environ.get("REPRO_SCALE", "smoke"))


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
