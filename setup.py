"""Setuptools entry point.

The project metadata lives in ``pyproject.toml``; this file exists so the
package can also be installed in environments whose tooling predates PEP 660
editable installs (``python setup.py develop`` or legacy ``pip install -e .``).
"""

from setuptools import setup

setup()
